//! The `spotnoise-router` cluster front-tier binary.
//!
//! ```text
//! spotnoise-router --workers host:port,host:port [--addr 127.0.0.1]
//!                  [--port 7996] [--node-id r0]
//!                  [--connect-timeout-ms 1000] [--health-timeout-ms 250]
//! ```
//!
//! Shards sessions across the listed worker nodes by consistent hashing
//! (shared-field sessions co-locate on their channel's owner) and proxies
//! the full service API: CRUD, frame fetch, frame streams, and aggregated
//! `/stats`, `/metrics` and `/healthz` cluster views. Saturated or dead
//! workers are routed around; the router sheds `503` only when every
//! worker is down.
//!
//! Prints `listening on http://<addr>` once bound (port 0 picks an
//! ephemeral port and prints the real one) and runs until `POST /shutdown`
//! — which stops the router only, never the workers.

use spotnoise_service::{serve_router, RouterOptions};
use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

fn parse<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> Option<T> {
    match args.next().map(|v| v.parse::<T>()) {
        Some(Ok(v)) => Some(v),
        _ => {
            eprintln!("{flag} needs a value");
            None
        }
    }
}

fn main() -> ExitCode {
    let mut addr = "127.0.0.1".to_string();
    let mut port: u16 = 7996;
    let mut options = RouterOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let ok = match arg.as_str() {
            "--addr" => parse::<String>(&mut args, "--addr")
                .map(|v| addr = v)
                .is_some(),
            "--port" => parse::<u16>(&mut args, "--port")
                .map(|v| port = v)
                .is_some(),
            "--node-id" => parse::<String>(&mut args, "--node-id")
                .map(|v| options.node_id = Some(v))
                .is_some(),
            "--connect-timeout-ms" => parse::<u64>(&mut args, "--connect-timeout-ms")
                .map(|v| options.connect_timeout = Duration::from_millis(v))
                .is_some(),
            "--health-timeout-ms" => parse::<u64>(&mut args, "--health-timeout-ms")
                .map(|v| {
                    options.health_timeout = Duration::from_millis(v);
                    options.health_ttl = Duration::from_millis(v);
                })
                .is_some(),
            "--workers" => match parse::<String>(&mut args, "--workers") {
                None => false,
                Some(list) => {
                    let parsed: Result<Vec<SocketAddr>, _> = list
                        .split(',')
                        .filter(|s| !s.is_empty())
                        .map(str::parse)
                        .collect();
                    match parsed {
                        Ok(workers) => {
                            options.workers = workers;
                            true
                        }
                        Err(e) => {
                            eprintln!("--workers: {e} (expected host:port,host:port)");
                            false
                        }
                    }
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                false
            }
        };
        if !ok {
            return ExitCode::FAILURE;
        }
    }
    if options.workers.is_empty() {
        eprintln!("--workers is required (comma-separated worker addresses)");
        return ExitCode::FAILURE;
    }
    let handle = match serve_router((addr.as_str(), port), options) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("bind {addr}:{port}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on http://{}", handle.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    handle.join();
    println!("shut down cleanly");
    ExitCode::SUCCESS
}
