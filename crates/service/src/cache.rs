//! The LRU frame cache.
//!
//! Rendered frames are memoised under a [`FrameKey`] — the stable content
//! hashes of the field and the session configuration, the seed, and the
//! frame index. Because a session's frames are a pure function of exactly
//! those four values (steering restarts the animation clock), a repeated or
//! steered-back request finds its frame here and skips synthesis entirely.
//! Hit/miss/eviction counters are reported through
//! [`spotnoise::metrics::CacheStats`] on the `/stats` endpoint.

use spotnoise::metrics::CacheStats;
use spotnoise::telemetry::{self, TraceSink, TraceStage};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Instant;

/// The identity of one rendered frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FrameKey {
    /// [`FieldSpec::cache_key`](crate::spec::FieldSpec::cache_key) of the
    /// session's field.
    pub field: u64,
    /// [`SessionSpec::config_cache_key`](crate::spec::SessionSpec::config_cache_key)
    /// of the session's configuration.
    pub config: u64,
    /// The synthesis seed (also folded into the config key; kept explicit so
    /// the key matches the paper-facing description and survives config-key
    /// schema changes).
    pub seed: u64,
    /// Frame index since the session's (re)start.
    pub frame: u64,
}

struct Entry {
    bytes: Arc<Vec<u8>>,
    tick: u64,
}

/// A least-recently-used cache of rendered frame byte buffers.
///
/// The budget is in **bytes**, not frames — a session is allowed textures
/// up to 2048² (16 MB per frame), so counting entries would let a handful
/// of large-texture sessions hold gigabytes. Byte accounting keeps the
/// overload story honest: cache memory is flat no matter what mix of frame
/// sizes clients request.
///
/// Not internally synchronized — the service wraps it in a `Mutex` and holds
/// the lock only for the O(log n) bookkeeping, never during synthesis.
pub struct FrameCache {
    capacity_bytes: usize,
    bytes: usize,
    entries: HashMap<FrameKey, Entry>,
    recency: BTreeMap<u64, FrameKey>,
    tick: u64,
    stats: CacheStats,
    /// Trace sink insertions are reported to (disabled by default).
    trace: TraceSink,
}

impl FrameCache {
    /// Creates a cache holding at most `capacity_bytes` of frame data (0
    /// disables caching: every lookup misses and inserts are dropped).
    pub fn new(capacity_bytes: usize) -> Self {
        FrameCache {
            capacity_bytes,
            bytes: 0,
            entries: HashMap::new(),
            recency: BTreeMap::new(),
            tick: 0,
            stats: CacheStats::default(),
            trace: TraceSink::disabled(),
        }
    }

    /// Installs the trace sink insertions report
    /// [`CacheInsert`](TraceStage::CacheInsert) spans to.
    pub fn set_trace_sink(&mut self, trace: TraceSink) {
        self.trace = trace;
    }

    /// Number of cached frames.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes currently held.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The configured byte budget.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Restores the cache's derived state after a panic may have left an
    /// update half-applied (the poison-recovery hook for the mutex the
    /// service wraps this cache in): the entry map is the ground truth, so
    /// the byte total, the recency index and the tick cursor are all
    /// recomputed from it, then the byte budget is re-enforced. Duplicate
    /// ticks (possible if a panic hit between the two map updates) collapse
    /// to one recency slot, in which case the orphaned entries are dropped
    /// to keep the two structures in lockstep.
    pub fn revalidate(&mut self) {
        let mut recency: BTreeMap<u64, FrameKey> = BTreeMap::new();
        for (key, entry) in &self.entries {
            recency.insert(entry.tick, *key);
        }
        self.entries
            .retain(|key, entry| recency.get(&entry.tick) == Some(key));
        self.bytes = self.entries.values().map(|e| e.bytes.len()).sum();
        self.tick = recency.keys().next_back().copied().unwrap_or(0) + 1;
        self.recency = recency;
        while self.bytes > self.capacity_bytes {
            let (&oldest, &victim) = self.recency.iter().next().expect("recency in sync");
            self.recency.remove(&oldest);
            let evicted = self.entries.remove(&victim).expect("entries in sync");
            self.bytes -= evicted.bytes.len();
            self.stats.evictions += 1;
        }
    }

    /// Counted lookup: the front-door check for a requested frame. A hit
    /// refreshes the entry's recency.
    pub fn lookup(&mut self, key: FrameKey) -> Option<Arc<Vec<u8>>> {
        match self.touch(key) {
            Some(bytes) => {
                self.stats.hits += 1;
                Some(bytes)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Uncounted lookup: the worker's re-check after admission (a racing
    /// request may have rendered the frame while this one queued). Refreshes
    /// recency but does not distort the hit rate, which counts each frame
    /// request once at the front door.
    pub fn peek(&mut self, key: FrameKey) -> Option<Arc<Vec<u8>>> {
        self.touch(key)
    }

    fn touch(&mut self, key: FrameKey) -> Option<Arc<Vec<u8>>> {
        self.tick += 1;
        let tick = self.tick;
        let entry = self.entries.get_mut(&key)?;
        self.recency.remove(&entry.tick);
        entry.tick = tick;
        self.recency.insert(tick, key);
        Some(Arc::clone(&entry.bytes))
    }

    /// Stores a rendered frame, evicting the least recently used entries
    /// until the byte budget holds. Re-inserting an existing key refreshes
    /// its bytes and recency. A single frame larger than the whole budget
    /// is evicted immediately (the cache never lies about its bound).
    pub fn insert(&mut self, key: FrameKey, bytes: Arc<Vec<u8>>) {
        self.insert_tagged(key, bytes, false);
    }

    /// Like [`FrameCache::insert`], tagging the entry as a *look-ahead*
    /// frame when `lookahead` is set: one rendered on the way to a requested
    /// index rather than for the request itself. Look-ahead insertions are
    /// counted in [`CacheStats::inserted_lookahead`] so `/stats` shows how
    /// much future-serving work each synthesis burst banked.
    pub fn insert_tagged(&mut self, key: FrameKey, bytes: Arc<Vec<u8>>, lookahead: bool) {
        if self.capacity_bytes == 0 {
            return;
        }
        let insert_start = Instant::now();
        if lookahead {
            self.stats.inserted_lookahead += 1;
        }
        self.tick += 1;
        let tick = self.tick;
        self.bytes += bytes.len();
        if let Some(old) = self.entries.insert(key, Entry { bytes, tick }) {
            self.recency.remove(&old.tick);
            self.bytes -= old.bytes.len();
        }
        self.recency.insert(tick, key);
        self.stats.insertions += 1;
        while self.bytes > self.capacity_bytes {
            // The smallest tick is the least recently used entry.
            let (&oldest, &victim) = self.recency.iter().next().expect("recency in sync");
            self.recency.remove(&oldest);
            let evicted = self.entries.remove(&victim).expect("entries in sync");
            self.bytes -= evicted.bytes.len();
            self.stats.evictions += 1;
        }
        // Inserts happen on the worker that synthesized the frame, so the
        // thread's trace context already carries the actor and frame ids;
        // detail = 1 marks a look-ahead insertion.
        self.trace.record_with(
            TraceStage::CacheInsert,
            telemetry::ctx(),
            insert_start,
            insert_start.elapsed(),
            lookahead as u64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(frame: u64) -> FrameKey {
        FrameKey {
            field: 1,
            config: 2,
            seed: 3,
            frame,
        }
    }

    fn bytes(v: u8) -> Arc<Vec<u8>> {
        Arc::new(vec![v; 8])
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let mut c = FrameCache::new(32);
        assert!(c.lookup(key(0)).is_none());
        c.insert(key(0), bytes(7));
        assert_eq!(c.lookup(key(0)).unwrap()[0], 7);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions, s.evictions), (1, 1, 1, 0));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(c.bytes(), 8);
    }

    #[test]
    fn peek_does_not_count() {
        let mut c = FrameCache::new(32);
        c.insert(key(0), bytes(1));
        assert!(c.peek(key(0)).is_some());
        assert!(c.peek(key(1)).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (0, 0));
    }

    #[test]
    fn eviction_is_least_recently_used() {
        // Room for exactly three 8-byte frames.
        let mut c = FrameCache::new(24);
        for f in 0..3 {
            c.insert(key(f), bytes(f as u8));
        }
        assert_eq!(c.bytes(), 24);
        // Touch 0 so 1 becomes the LRU victim.
        assert!(c.lookup(key(0)).is_some());
        c.insert(key(3), bytes(3));
        assert_eq!(c.len(), 3);
        assert_eq!(c.bytes(), 24);
        assert!(c.peek(key(1)).is_none(), "LRU entry should be evicted");
        assert!(c.peek(key(0)).is_some());
        assert!(c.peek(key(2)).is_some());
        assert!(c.peek(key(3)).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn budget_is_in_bytes_not_entries() {
        // 64 bytes of budget: eight 8-byte frames fit, but two 32-byte
        // frames already fill it — a third evicts the oldest.
        let mut c = FrameCache::new(64);
        let big = |v: u8| Arc::new(vec![v; 32]);
        c.insert(key(0), big(0));
        c.insert(key(1), big(1));
        assert_eq!((c.len(), c.bytes()), (2, 64));
        c.insert(key(2), big(2));
        assert_eq!((c.len(), c.bytes()), (2, 64));
        assert!(c.peek(key(0)).is_none());
        // A frame bigger than the whole budget never sticks.
        c.insert(key(9), Arc::new(vec![9; 128]));
        assert!(c.peek(key(9)).is_none());
        assert!(c.bytes() <= 64);
    }

    #[test]
    fn reinsert_refreshes_instead_of_duplicating() {
        let mut c = FrameCache::new(16);
        c.insert(key(0), bytes(1));
        c.insert(key(0), bytes(2));
        assert_eq!(c.len(), 1);
        assert_eq!(c.bytes(), 8);
        assert_eq!(c.peek(key(0)).unwrap()[0], 2);
        c.insert(key(1), bytes(3));
        c.insert(key(2), bytes(4));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = FrameCache::new(0);
        c.insert(key(0), bytes(1));
        c.insert_tagged(key(1), bytes(2), true);
        assert!(c.is_empty());
        assert!(c.lookup(key(0)).is_none());
        assert_eq!(c.stats().insertions, 0);
        assert_eq!(c.stats().inserted_lookahead, 0);
    }

    #[test]
    fn lookahead_insertions_are_counted_separately() {
        let mut c = FrameCache::new(64);
        // A request for frame 2 renders 0 and 1 on the way: two look-ahead
        // insertions, one direct.
        c.insert_tagged(key(0), bytes(0), true);
        c.insert_tagged(key(1), bytes(1), true);
        c.insert_tagged(key(2), bytes(2), false);
        let s = c.stats();
        assert_eq!(s.insertions, 3);
        assert_eq!(s.inserted_lookahead, 2);
        // All three entries are equally real cache entries.
        assert!(c.peek(key(0)).is_some());
        assert!(c.peek(key(2)).is_some());
    }

    #[test]
    fn revalidate_rebuilds_derived_state_from_the_entries() {
        let mut c = FrameCache::new(32);
        for f in 0..3 {
            c.insert(key(f), bytes(f as u8));
        }
        // Simulate a panic that corrupted the derived bookkeeping.
        c.bytes = 9999;
        c.recency.clear();
        c.tick = 0;
        c.revalidate();
        assert_eq!(c.bytes(), 24);
        assert_eq!(c.len(), 3);
        // The cache is fully functional again: lookups hit, inserts evict.
        assert!(c.lookup(key(0)).is_some());
        c.insert(key(3), bytes(3));
        assert!(c.bytes() <= 32);
        // Over-budget state left by a torn insert is re-enforced too.
        let mut c = FrameCache::new(16);
        c.insert(key(0), bytes(0));
        c.insert(key(1), bytes(1));
        c.capacity_bytes = 8;
        c.revalidate();
        assert!(c.bytes() <= 8);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn distinct_key_components_are_distinct_entries() {
        let mut c = FrameCache::new(64);
        let base = key(0);
        let variants = [
            FrameKey { field: 9, ..base },
            FrameKey { config: 9, ..base },
            FrameKey { seed: 9, ..base },
            FrameKey { frame: 9, ..base },
        ];
        c.insert(base, bytes(0));
        for (i, v) in variants.iter().enumerate() {
            c.insert(*v, bytes(i as u8 + 1));
        }
        assert_eq!(c.len(), 5);
        assert_eq!(c.peek(base).unwrap()[0], 0);
    }
}
