//! Shared-field broadcast channels.
//!
//! The production shape of the paper's use case is many viewers watching
//! *one* evolving flow field. Per-session pipelines make that O(sessions)
//! synthesis work; a [`FieldChannel`] makes it O(fields): one advected spot
//! population and one synthesis clock per distinct `(field, config, seed)`
//! feed every subscribed session, and delivery is a fan-out of cached
//! `Arc<Vec<u8>>` frame bodies — no synthesis, no copies.
//!
//! ## Clock semantics
//!
//! A channel's clock only moves **forward**. A subscriber requesting a
//! frame at or past the channel head advances the shared clock (and the
//! channel pre-renders a small look-ahead window beyond the request, reusing
//! the frame cache's look-ahead insertion path, so the next subscriber in
//! line usually finds its frame already cached). A subscriber requesting a
//! frame *behind* the head whose bytes have fallen out of the cache is not
//! allowed to rewind the shared population — that would stall every other
//! viewer — so it **skips to the live frontier**: it is served the most
//! recently synthesized frame, the serve is flagged
//! ([`ServedFrame::skipped`]) and counted ([`ChannelTotals::skips`]). This
//! is the broadcast backpressure rule: a slow subscriber loses frames, never
//! the channel.
//!
//! Steering is a *session* operation, not a channel one: steering a
//! subscribed session forks it off the channel into a private session with
//! its own pipeline (see [`Session::steer`](crate::session::Session::steer)).
//!
//! Channels are owned by a [`ChannelRegistry`] keyed by
//! [`ChannelKey`]; sessions hold [`ChannelSubscription`] guards whose drop
//! unsubscribes, and the registry retires channels with no subscribers left
//! (accumulating their counters so `/stats` totals stay monotonic).

use crate::cache::FrameKey;
use crate::session::{advance_pipeline, build_pipeline, RenderError, ServedFrame, SharedPools};
use crate::spec::SessionSpec;
use flowfield::VectorField;
use softpipe::sync::lock_recover;
use spotnoise::metrics::StageTimings;
use spotnoise::pipeline::Pipeline;
use spotnoise::telemetry::{TraceCtx, TraceSink, TraceStage};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Queue ids for channel-driven synthesis jobs live in the upper half of the
/// u64 space, disjoint from session ids (which count up from 1), so channel
/// jobs ride the same session-fair [`FrameQueue`](crate::queue::FrameQueue)
/// rotation as private-session jobs: each channel gets one fair share, no
/// matter how many subscribers it feeds.
pub const CHANNEL_QUEUE_ID_BASE: u64 = 1 << 63;

/// The identity of a broadcast channel: everything the rendered texels
/// depend on. Two sessions created with byte-identical `(field, config,
/// seed)` specs share one channel — and one synthesis clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChannelKey {
    /// [`FieldSpec::cache_key`](crate::spec::FieldSpec::cache_key) of the
    /// channel's field.
    pub field: u64,
    /// [`SessionSpec::config_cache_key`] of the channel's configuration.
    pub config: u64,
    /// The synthesis seed.
    pub seed: u64,
}

impl ChannelKey {
    /// The channel key a spec maps to.
    pub fn of(spec: &SessionSpec) -> ChannelKey {
        ChannelKey {
            field: spec.field.cache_key(),
            config: spec.config_cache_key(),
            seed: spec.config.seed,
        }
    }
}

/// The synthesis half of a channel: the advected spot population and its
/// pipeline. Locked only while the clock advances.
struct ChannelSynth {
    field: Box<dyn VectorField + Send + Sync>,
    pipeline: Pipeline,
}

/// One shared-field broadcast: a single advected spot population and
/// synthesis clock feeding every subscribed session.
pub struct FieldChannel {
    key: ChannelKey,
    queue_id: u64,
    spec: SessionSpec,
    /// Look-ahead window, shared with the owning registry so the pressure
    /// ladder can shut speculative synthesis off across every live channel
    /// with one store.
    lookahead: Arc<AtomicU64>,
    /// The pools the synth pipeline composes on — kept so a poisoned synth
    /// lock can rebuild the pipeline on the same warm buffers and workers.
    pools: SharedPools,
    synth: Mutex<ChannelSynth>,
    /// One past the most recently synthesized frame (mirrors
    /// `synth.pipeline.frames()` so readers never need the synth lock).
    head: AtomicU64,
    /// The most recently synthesized frame — the "live frontier" a
    /// fallen-behind subscriber skips to, held here so the skip costs one
    /// `Arc` clone even if the frame has already been evicted from the
    /// cache.
    latest: Mutex<Option<(u64, Arc<Vec<u8>>)>>,
    subscribers: AtomicUsize,
    peak_subscribers: AtomicUsize,
    /// Frames handed to subscribers (rendered, cache-served or skipped).
    delivered: AtomicU64,
    /// Frames actually synthesized on this channel's clock.
    synthesized: AtomicU64,
    /// Serves where a fallen-behind subscriber was skipped to the frontier.
    skips: AtomicU64,
    /// Trace sink [`FieldChannel::serve`] reports its spans to (cloned from
    /// the shared pools at creation).
    trace: TraceSink,
}

impl FieldChannel {
    fn new(
        spec: SessionSpec,
        pools: &SharedPools,
        queue_id: u64,
        lookahead: Arc<AtomicU64>,
    ) -> Self {
        FieldChannel {
            key: ChannelKey::of(&spec),
            queue_id,
            lookahead,
            pools: pools.clone(),
            synth: Mutex::new(ChannelSynth {
                field: spec.field.build(),
                pipeline: build_pipeline(&spec, pools),
            }),
            head: AtomicU64::new(0),
            latest: Mutex::new(None),
            subscribers: AtomicUsize::new(0),
            peak_subscribers: AtomicUsize::new(0),
            delivered: AtomicU64::new(0),
            synthesized: AtomicU64::new(0),
            skips: AtomicU64::new(0),
            trace: pools.trace.clone(),
            spec,
        }
    }

    /// Locks the synthesis state, recovering from poison by rebuilding the
    /// field and pipeline from the spec. The rebuilt clock restarts at the
    /// seed and replays deterministically — every re-synthesized frame is
    /// bit-identical to its first rendering and lands on the same cache
    /// keys, so subscribers at worst see already-cached frames re-served
    /// while the clock catches back up.
    fn synth(&self) -> MutexGuard<'_, ChannelSynth> {
        lock_recover(&self.synth, |synth| {
            *synth = ChannelSynth {
                field: self.spec.field.build(),
                pipeline: build_pipeline(&self.spec, &self.pools),
            };
            // Keep the published head mirroring the (rebuilt) pipeline.
            self.head.store(0, Ordering::SeqCst);
        })
    }

    /// Locks the frontier slot. No revalidation needed on poison: the slot
    /// is a single `Option` that is only ever wholesale-replaced, so both
    /// states a panic can leave behind are valid.
    fn latest_slot(&self) -> MutexGuard<'_, Option<(u64, Arc<Vec<u8>>)>> {
        lock_recover(&self.latest, |_| {})
    }

    /// The most recently synthesized frame and its index — the frontier a
    /// saturated server hands to shared subscribers as a *stale* serve
    /// instead of queueing synthesis work.
    pub fn latest_frame(&self) -> Option<(u64, Arc<Vec<u8>>)> {
        self.latest_slot().clone()
    }

    /// The channel's identity key.
    pub fn key(&self) -> ChannelKey {
        self.key
    }

    /// The admission-queue id channel jobs are submitted under (disjoint
    /// from session ids; one fair share per channel).
    pub fn queue_id(&self) -> u64 {
        self.queue_id
    }

    /// The spec the channel synthesizes.
    pub fn spec(&self) -> &SessionSpec {
        &self.spec
    }

    /// One past the most recently synthesized frame.
    pub fn head(&self) -> u64 {
        self.head.load(Ordering::SeqCst)
    }

    /// Current subscriber count.
    pub fn subscribers(&self) -> usize {
        self.subscribers.load(Ordering::SeqCst)
    }

    /// The frame-cache key of the channel's frame `frame`.
    pub fn key_for(&self, frame: u64) -> FrameKey {
        FrameKey {
            field: self.key.field,
            config: self.key.config,
            seed: self.key.seed,
            frame,
        }
    }

    /// Records a frame served to a subscriber from the cache (the fan-out
    /// path that never reaches [`FieldChannel::serve`]).
    pub fn note_delivered(&self) {
        self.delivered.fetch_add(1, Ordering::Relaxed);
    }

    /// Counter snapshot.
    pub fn totals(&self) -> ChannelTotals {
        ChannelTotals {
            live: 1,
            created: 1,
            subscribers: self.subscribers.load(Ordering::SeqCst),
            peak_subscribers: self.peak_subscribers.load(Ordering::SeqCst),
            delivered: self.delivered.load(Ordering::Relaxed),
            synthesized: self.synthesized.load(Ordering::Relaxed),
            skips: self.skips.load(Ordering::Relaxed),
        }
    }

    /// Serves frame `index` on the shared clock. Called by a synthesis
    /// worker after a cache miss.
    ///
    /// * `index >= head`: the clock advances to `index` **plus the
    ///   look-ahead window**; every synthesized frame (look-ahead included)
    ///   is handed to `on_frame` for cache insertion, so the subscribers
    ///   behind this one fan out of the cache without touching the clock.
    /// * `index < head`: the subscriber has fallen behind a frame the cache
    ///   no longer holds. The shared clock never rewinds — the subscriber is
    ///   skipped to the live frontier (the most recent frame), flagged and
    ///   counted.
    ///
    /// The advance cap counts only the frames needed to *reach* `index`;
    /// the look-ahead window is the server's own choice and is exempt.
    pub fn serve(
        &self,
        index: u64,
        max_advances: u64,
        mut on_frame: impl FnMut(FrameKey, &Arc<Vec<u8>>, &StageTimings),
    ) -> Result<ServedFrame, RenderError> {
        let serve_start = Instant::now();
        let serve_ctx = TraceCtx {
            actor: self.queue_id,
            frame: index,
        };
        let mut synth = self.synth();
        let head = synth.pipeline.frames();
        if index < head {
            let (frame, bytes) = self
                .latest_slot()
                .clone()
                .expect("head > 0 implies a latest frame");
            self.skips.fetch_add(1, Ordering::Relaxed);
            self.delivered.fetch_add(1, Ordering::Relaxed);
            // detail = 1: the serve skipped to the live frontier.
            self.trace.record_with(
                TraceStage::ChannelServe,
                serve_ctx,
                serve_start,
                serve_start.elapsed(),
                1,
            );
            return Ok(ServedFrame {
                bytes,
                frame,
                skipped: true,
            });
        }
        let advances_after_first = index - head;
        if advances_after_first >= max_advances {
            return Err(RenderError::TooFarAhead {
                needed: advances_after_first.saturating_add(1),
                max: max_advances,
            });
        }
        let target = index.saturating_add(self.lookahead.load(Ordering::Relaxed));
        let mut requested = None;
        while synth.pipeline.frames() <= target {
            let frame_index = synth.pipeline.frames();
            let ChannelSynth { field, pipeline } = &mut *synth;
            let (bytes, timings) = advance_pipeline(pipeline, field.as_ref(), self.spec.dt);
            self.synthesized.fetch_add(1, Ordering::Relaxed);
            on_frame(self.key_for(frame_index), &bytes, &timings);
            if frame_index == index {
                requested = Some(Arc::clone(&bytes));
            }
            *self.latest_slot() = Some((frame_index, Arc::clone(&bytes)));
            self.head.store(frame_index + 1, Ordering::SeqCst);
        }
        self.delivered.fetch_add(1, Ordering::Relaxed);
        self.trace.record_with(
            TraceStage::ChannelServe,
            serve_ctx,
            serve_start,
            serve_start.elapsed(),
            0,
        );
        Ok(ServedFrame {
            bytes: requested.expect("index <= target, so the loop rendered it"),
            frame: index,
            skipped: false,
        })
    }
}

impl std::fmt::Debug for FieldChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FieldChannel")
            .field("key", &self.key)
            .field("queue_id", &self.queue_id)
            .field("head", &self.head())
            .field("subscribers", &self.subscribers())
            .finish()
    }
}

/// RAII membership of one session in a channel: dropping it unsubscribes.
/// The registry retires channels once their last subscription drops.
pub struct ChannelSubscription {
    channel: Arc<FieldChannel>,
}

impl ChannelSubscription {
    /// The subscribed channel.
    pub fn channel(&self) -> &Arc<FieldChannel> {
        &self.channel
    }
}

impl std::fmt::Debug for ChannelSubscription {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelSubscription")
            .field("key", &self.channel.key())
            .finish()
    }
}

impl Drop for ChannelSubscription {
    fn drop(&mut self) {
        self.channel.subscribers.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Aggregated channel counters for `/stats` (live channels plus everything
/// already retired, so the totals are monotonic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelTotals {
    /// Channels currently live.
    pub live: usize,
    /// Channels ever created.
    pub created: u64,
    /// Subscribers across live channels.
    pub subscribers: usize,
    /// Highest subscriber count any single channel ever reached.
    pub peak_subscribers: usize,
    /// Frames handed to subscribers (rendered, cached or skipped).
    pub delivered: u64,
    /// Frames synthesized on channel clocks.
    pub synthesized: u64,
    /// Fallen-behind serves skipped to the live frontier.
    pub skips: u64,
}

impl ChannelTotals {
    fn absorb(&mut self, other: ChannelTotals) {
        self.live += other.live;
        self.created += other.created;
        self.subscribers += other.subscribers;
        self.peak_subscribers = self.peak_subscribers.max(other.peak_subscribers);
        self.delivered += other.delivered;
        self.synthesized += other.synthesized;
        self.skips += other.skips;
    }
}

/// Owns the live channels, keyed by [`ChannelKey`].
pub struct ChannelRegistry {
    channels: HashMap<ChannelKey, Arc<FieldChannel>>,
    pools: SharedPools,
    /// Look-ahead window shared with every channel this registry created,
    /// so [`ChannelRegistry::set_lookahead`] retargets them all at once.
    lookahead: Arc<AtomicU64>,
    next_seq: u64,
    created: u64,
    /// Counters of retired channels, folded into [`ChannelRegistry::totals`].
    retired: ChannelTotals,
}

impl ChannelRegistry {
    /// Creates a registry whose channels compose on the given pools and
    /// pre-render `lookahead` frames past each served request.
    pub fn new(pools: SharedPools, lookahead: u64) -> Self {
        ChannelRegistry {
            channels: HashMap::new(),
            pools,
            lookahead: Arc::new(AtomicU64::new(lookahead)),
            next_seq: 0,
            created: 0,
            retired: ChannelTotals::default(),
        }
    }

    /// The current look-ahead window.
    pub fn lookahead(&self) -> u64 {
        self.lookahead.load(Ordering::Relaxed)
    }

    /// Retargets the look-ahead window of every channel, live and future —
    /// the pressure ladder sets it to 0 under load (no speculative
    /// synthesis) and restores it on recovery.
    pub fn set_lookahead(&self, frames: u64) {
        self.lookahead.store(frames, Ordering::Relaxed);
    }

    /// Subscribes to the channel for `spec`, creating it if no session is
    /// watching that `(field, config, seed)` yet.
    pub fn subscribe(&mut self, spec: &SessionSpec) -> ChannelSubscription {
        let key = ChannelKey::of(spec);
        let channel = match self.channels.get(&key) {
            Some(channel) => Arc::clone(channel),
            None => {
                let queue_id = CHANNEL_QUEUE_ID_BASE | self.next_seq;
                self.next_seq += 1;
                self.created += 1;
                let channel = Arc::new(FieldChannel::new(
                    *spec,
                    &self.pools,
                    queue_id,
                    Arc::clone(&self.lookahead),
                ));
                self.channels.insert(key, Arc::clone(&channel));
                channel
            }
        };
        let count = channel.subscribers.fetch_add(1, Ordering::SeqCst) + 1;
        channel.peak_subscribers.fetch_max(count, Ordering::SeqCst);
        ChannelSubscription { channel }
    }

    /// Retires channels with no subscribers left (their pipelines — the
    /// expensive part — are dropped; their counters are folded into the
    /// registry totals). Returns how many were retired.
    pub fn sweep(&mut self) -> usize {
        let victims: Vec<ChannelKey> = self
            .channels
            .iter()
            .filter(|(_, c)| c.subscribers() == 0)
            .map(|(&k, _)| k)
            .collect();
        for key in &victims {
            if let Some(channel) = self.channels.remove(key) {
                let mut t = channel.totals();
                t.live = 0;
                t.created = 0; // `created` is tracked by the registry
                self.retired.absorb(t);
            }
        }
        victims.len()
    }

    /// Number of live channels.
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// True when no channel is live.
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }

    /// Aggregated counters: live channels plus retired history.
    pub fn totals(&self) -> ChannelTotals {
        let mut totals = self.retired;
        totals.created += self.created;
        for channel in self.channels.values() {
            let mut t = channel.totals();
            t.created = 0;
            totals.absorb(t);
        }
        totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use spotnoise::config::SynthesisConfig;

    fn quick_spec(seed: u64) -> SessionSpec {
        SessionSpec {
            config: SynthesisConfig {
                texture_size: 32,
                spot_count: 40,
                spot_texture_size: 8,
                seed,
                ..SynthesisConfig::small_test()
            },
            ..SessionSpec::default()
        }
    }

    fn registry(lookahead: u64) -> ChannelRegistry {
        ChannelRegistry::new(SharedPools::default(), lookahead)
    }

    #[test]
    fn subscribe_dedupes_on_field_config_seed() {
        let mut r = registry(0);
        let a = r.subscribe(&quick_spec(1));
        let b = r.subscribe(&quick_spec(1));
        assert!(Arc::ptr_eq(a.channel(), b.channel()));
        assert_eq!(a.channel().subscribers(), 2);
        let c = r.subscribe(&quick_spec(2));
        assert!(!Arc::ptr_eq(a.channel(), c.channel()));
        assert_ne!(a.channel().queue_id(), c.channel().queue_id());
        assert!(a.channel().queue_id() >= CHANNEL_QUEUE_ID_BASE);
        assert_eq!(r.len(), 2);
        let t = r.totals();
        assert_eq!((t.live, t.created, t.subscribers), (2, 2, 3));
        assert_eq!(t.peak_subscribers, 2);
    }

    #[test]
    fn serve_renders_lookahead_and_advances_the_head() {
        let mut r = registry(2);
        let sub = r.subscribe(&quick_spec(1));
        let mut seen = Vec::new();
        let served = sub
            .channel()
            .serve(0, 16, |key, bytes, _| {
                assert_eq!(bytes.len(), 32 * 32 * 4);
                seen.push(key.frame);
            })
            .unwrap();
        assert_eq!(served.frame, 0);
        assert!(!served.skipped);
        // Frame 0 plus the 2-frame look-ahead window.
        assert_eq!(seen, vec![0, 1, 2]);
        assert_eq!(sub.channel().head(), 3);
        // Serving inside the already-rendered window is a *skip* at the
        // channel level (the cache, not the clock, owns those frames).
        let skipped = sub.channel().serve(1, 16, |_, _, _| {}).unwrap();
        assert!(skipped.skipped);
        assert_eq!(skipped.frame, 2, "skips land on the live frontier");
        let t = sub.channel().totals();
        assert_eq!((t.synthesized, t.delivered, t.skips), (3, 2, 1));
    }

    #[test]
    fn channel_frames_are_bit_identical_to_a_private_session() {
        // The broadcast clock must reproduce exactly what a per-session
        // pipeline renders: same spec, same frame index, same bytes.
        let mut private = Session::new(quick_spec(7));
        let mut private_frames = Vec::new();
        private
            .render_frame(3, 16, |key, bytes, _| {
                private_frames.push((key, Arc::clone(bytes)));
            })
            .unwrap();

        let mut r = registry(0);
        let sub = r.subscribe(&quick_spec(7));
        let mut channel_frames = Vec::new();
        sub.channel()
            .serve(3, 16, |key, bytes, _| {
                channel_frames.push((key, Arc::clone(bytes)));
            })
            .unwrap();

        assert_eq!(private_frames.len(), 4);
        assert_eq!(channel_frames.len(), 4);
        for ((pk, pb), (ck, cb)) in private_frames.iter().zip(&channel_frames) {
            assert_eq!(pk, ck, "cache keys agree across modes");
            assert_eq!(pb, cb, "frame bytes agree across modes");
        }
    }

    #[test]
    fn advance_cap_applies_to_the_request_not_the_lookahead() {
        let mut r = registry(4);
        let sub = r.subscribe(&quick_spec(1));
        let err = sub.channel().serve(16, 16, |_, _, _| {}).unwrap_err();
        assert_eq!(
            err,
            RenderError::TooFarAhead {
                needed: 17,
                max: 16
            }
        );
        // Exactly at the cap is allowed — and the look-ahead beyond it is
        // the server's own business.
        let served = sub.channel().serve(15, 16, |_, _, _| {}).unwrap();
        assert_eq!(served.frame, 15);
        assert_eq!(sub.channel().head(), 20);
    }

    #[test]
    fn lookahead_retargets_every_live_channel() {
        let mut r = registry(3);
        let sub = r.subscribe(&quick_spec(1));
        assert_eq!(r.lookahead(), 3);
        // Pressure ladder shuts speculation off: the next serve renders
        // only the requested frame.
        r.set_lookahead(0);
        sub.channel().serve(0, 16, |_, _, _| {}).unwrap();
        assert_eq!(sub.channel().head(), 1, "no speculative frames rendered");
        // Recovery restores the window.
        r.set_lookahead(3);
        sub.channel().serve(1, 16, |_, _, _| {}).unwrap();
        assert_eq!(sub.channel().head(), 5);
    }

    #[test]
    fn latest_frame_exposes_the_frontier_for_stale_serves() {
        let mut r = registry(0);
        let sub = r.subscribe(&quick_spec(1));
        assert!(sub.channel().latest_frame().is_none());
        let served = sub.channel().serve(2, 16, |_, _, _| {}).unwrap();
        let (frame, bytes) = sub.channel().latest_frame().unwrap();
        assert_eq!(frame, 2);
        assert_eq!(bytes, served.bytes);
    }

    #[test]
    fn poisoned_synth_rebuilds_and_replays_bit_identically() {
        let mut r = registry(0);
        let sub = r.subscribe(&quick_spec(5));
        let before = sub.channel().serve(1, 16, |_, _, _| {}).unwrap();
        // Poison the synth lock the way a panicking render would.
        let channel = Arc::clone(sub.channel());
        let _ = std::thread::spawn(move || {
            let _guard = channel.synth.lock().unwrap();
            panic!("poison the channel synth");
        })
        .join();
        assert!(sub.channel().synth.lock().is_err(), "lock starts poisoned");
        // The next serve recovers: the clock restarts at the seed and
        // replays, so the same frame index yields the same bytes.
        let after = sub.channel().serve(1, 16, |_, _, _| {}).unwrap();
        assert_eq!(before.bytes, after.bytes, "replay must be bit-identical");
        assert!(!after.skipped);
        assert_eq!(sub.channel().head(), 2);
    }

    #[test]
    fn sweep_retires_unsubscribed_channels_and_keeps_totals() {
        let mut r = registry(1);
        let a = r.subscribe(&quick_spec(1));
        let b = r.subscribe(&quick_spec(2));
        a.channel().serve(0, 16, |_, _, _| {}).unwrap();
        assert_eq!(r.sweep(), 0, "subscribed channels are kept");
        drop(a);
        assert_eq!(r.sweep(), 1);
        assert_eq!(r.len(), 1);
        let t = r.totals();
        // The retired channel's synthesis (frame 0 + 1 look-ahead) stays in
        // the totals; `created` counts both channels.
        assert_eq!(t.synthesized, 2);
        assert_eq!((t.live, t.created), (1, 2));
        drop(b);
        assert_eq!(r.sweep(), 1);
        assert!(r.is_empty());
        assert_eq!(r.totals().created, 2);
    }
}
