//! Pooled per-frame buffers: zero steady-state allocation for synthesis.
//!
//! Every engine frame used to allocate (and fault in) fresh framebuffer-sized
//! buffers: the gather target, one partial texture per finished pipe, and the
//! command-stream `Vec`s the masters batch spot draws into. On a steady-state
//! server rendering frames back to back those allocations — megabytes of
//! `malloc` + page faults per frame at 512²+ — are pure overhead: the
//! buffers' sizes never change. A [`FrameArena`] recycles them instead:
//! textures and command vectors are checked out at the start of a frame and
//! checked back in when the gather has folded them (or the pipe has executed
//! them), so after the first frame the hot loop touches only warm,
//! already-mapped memory.
//!
//! Textures are pooled **per size class** (texel count): a checkout is only
//! served from a buffer of exactly the requested texel count, never by
//! reshaping a differently-sized one. One arena can therefore be shared by
//! sessions rendering different frame sizes — a 128² session and a 512²
//! session each reuse their own buffers — without the alternating
//! reallocation thrash a single mixed pool would cause (a 128² buffer grown
//! to 512² and back reallocates on every alternation).
//!
//! The arena is shared across threads (masters, pipe workers and the gather
//! all check buffers in and out), so every method takes `&self` and the pools
//! live behind mutexes held only for the O(1) push/pop — never during
//! rendering. Reuse is strictly *allocation* reuse: a recycled texture is
//! re-zeroed (or fully overwritten) before it is observable, so outputs are
//! bit-identical with and without an arena — which the arena-reuse tests
//! assert.

use crate::pipe::RenderCommand;
use crate::sync::lock_recover;
use crate::texture::Texture;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Maximum buffers kept per texture size class (and for the command-vector
/// pool); beyond this, returned buffers are dropped. A frame needs one
/// texture per process group plus the gather target, so 32 covers any
/// plausible machine shape without hoarding memory after a burst.
const MAX_POOLED: usize = 32;

/// Counter snapshot of an arena (telemetry for tests and the bench).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Texture checkouts served by allocating fresh memory.
    pub texture_allocations: u64,
    /// Texture checkouts served from the pool.
    pub texture_reuses: u64,
    /// Command-vector checkouts served by allocating fresh memory.
    pub command_allocations: u64,
    /// Command-vector checkouts served from the pool.
    pub command_reuses: u64,
}

/// One texture size class: all pooled buffers of a given texel count.
/// Size classes are kept in a small association list rather than a hash
/// map — an arena sees a handful of frame sizes at most, a linear scan is
/// free next to the lock, and (measured) instantiating a `HashMap` here
/// perturbs codegen of the rasterizer hot loops elsewhere in this crate.
#[derive(Debug)]
struct SizeClass {
    texels: usize,
    pool: Vec<Texture>,
}

/// A shared pool of framebuffer-sized textures and render-command vectors.
#[derive(Debug, Default)]
pub struct FrameArena {
    /// Texture pools, one per size class (texel count).
    textures: Mutex<Vec<SizeClass>>,
    commands: Mutex<Vec<Vec<RenderCommand>>>,
    texture_allocations: AtomicU64,
    texture_reuses: AtomicU64,
    command_allocations: AtomicU64,
    command_reuses: AtomicU64,
}

impl FrameArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        FrameArena::default()
    }

    /// Takes the texture pools, recovering from poison by dropping every
    /// pooled buffer: pooled textures are pure caches, so an empty pool is
    /// always a valid (merely cold) state.
    fn texture_pools(&self) -> MutexGuard<'_, Vec<SizeClass>> {
        lock_recover(&self.textures, Vec::clear)
    }

    /// Same recovery contract as [`FrameArena::texture_pools`] for the
    /// command-vector pool.
    fn command_pool(&self) -> MutexGuard<'_, Vec<Vec<RenderCommand>>> {
        lock_recover(&self.commands, Vec::clear)
    }

    /// Checks out a zeroed `width` × `height` texture (the [`Texture::new`]
    /// contract), reusing a pooled allocation of the same texel count when
    /// one is available.
    pub fn texture_zeroed(&self, width: usize, height: usize) -> Texture {
        self.texture(width, height, true)
    }

    /// Checks out a `width` × `height` texture whose contents are
    /// **unspecified** — for callers that overwrite every texel (partial
    /// readback copies, the additive gather target whose first fold is a
    /// wholesale copy). Skipping the clear keeps reuse cheaper than a fresh
    /// zeroed allocation even for the first touch.
    pub fn texture_uninit(&self, width: usize, height: usize) -> Texture {
        self.texture(width, height, false)
    }

    fn texture(&self, width: usize, height: usize, zero: bool) -> Texture {
        let texels = width * height;
        let pooled = self
            .texture_pools()
            .iter_mut()
            .find(|class| class.texels == texels)
            .and_then(|class| class.pool.pop());
        match pooled {
            Some(mut t) => {
                self.texture_reuses.fetch_add(1, Ordering::Relaxed);
                // Same texel count by construction: reset only reshapes (and
                // optionally zeroes) — it can never reallocate.
                t.reset(width, height, zero);
                t
            }
            None => {
                self.texture_allocations.fetch_add(1, Ordering::Relaxed);
                Texture::new(width, height)
            }
        }
    }

    /// Returns a texture to its size class's pool for a later checkout.
    pub fn recycle_texture(&self, texture: Texture) {
        let texels = texture.data().len();
        let mut classes = self.texture_pools();
        let class = match classes.iter_mut().find(|class| class.texels == texels) {
            Some(class) => class,
            None => {
                classes.push(SizeClass {
                    texels,
                    pool: Vec::new(),
                });
                classes.last_mut().expect("just pushed")
            }
        };
        if class.pool.len() < MAX_POOLED {
            class.pool.push(texture);
        }
    }

    /// Checks out an empty command vector with at least `capacity` slots.
    pub fn commands(&self, capacity: usize) -> Vec<RenderCommand> {
        let pooled = self.command_pool().pop();
        match pooled {
            Some(mut v) => {
                self.command_reuses.fetch_add(1, Ordering::Relaxed);
                debug_assert!(v.is_empty());
                if v.capacity() < capacity {
                    v.reserve(capacity - v.len());
                }
                v
            }
            None => {
                self.command_allocations.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(capacity)
            }
        }
    }

    /// Returns a command vector to the pool, clearing it first (the commands
    /// themselves are dropped; only the outer allocation is retained).
    pub fn recycle_commands(&self, mut commands: Vec<RenderCommand>) {
        commands.clear();
        let mut pool = self.command_pool();
        if pool.len() < MAX_POOLED {
            pool.push(commands);
        }
    }

    /// Number of textures currently pooled, over all size classes.
    pub fn pooled_textures(&self) -> usize {
        self.texture_pools()
            .iter()
            .map(|class| class.pool.len())
            .sum()
    }

    /// Number of distinct texture size classes currently pooled.
    pub fn texture_size_classes(&self) -> usize {
        self.texture_pools().len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            texture_allocations: self.texture_allocations.load(Ordering::Relaxed),
            texture_reuses: self.texture_reuses.load(Ordering::Relaxed),
            command_allocations: self.command_allocations.load(Ordering::Relaxed),
            command_reuses: self.command_reuses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn texture_checkout_reuses_the_allocation() {
        let arena = FrameArena::new();
        let mut t = arena.texture_zeroed(16, 16);
        t.fill(2.0);
        arena.recycle_texture(t);
        let t = arena.texture_zeroed(16, 16);
        assert!(t.data().iter().all(|&v| v == 0.0), "recycled texture dirty");
        let s = arena.stats();
        assert_eq!((s.texture_allocations, s.texture_reuses), (1, 1));
    }

    #[test]
    fn dirty_checkout_skips_the_clear_but_keeps_the_shape() {
        let arena = FrameArena::new();
        let mut t = arena.texture_uninit(8, 8);
        t.fill(1.0);
        arena.recycle_texture(t);
        // Same texel count, different shape: served from the pool (reshape
        // in place, no reallocation).
        let t = arena.texture_uninit(4, 16);
        assert_eq!((t.width(), t.height()), (4, 16));
        assert_eq!(t.data().len(), 64);
        let s = arena.stats();
        assert_eq!((s.texture_allocations, s.texture_reuses), (1, 1));
    }

    #[test]
    fn checkouts_never_cross_size_classes() {
        let arena = FrameArena::new();
        arena.recycle_texture(Texture::new(8, 8));
        // A differently-sized checkout must allocate fresh instead of
        // reshaping the 8x8 buffer (which would reallocate its storage).
        let big = arena.texture_zeroed(32, 32);
        assert_eq!(big.data().len(), 32 * 32);
        let s = arena.stats();
        assert_eq!((s.texture_allocations, s.texture_reuses), (1, 0));
        // The 8x8 buffer is still pooled for its own size class.
        let small = arena.texture_zeroed(8, 8);
        assert_eq!(small.data().len(), 64);
        assert_eq!(arena.stats().texture_reuses, 1);
        assert_eq!(arena.texture_size_classes(), 1);
    }

    #[test]
    fn mixed_sizes_reach_steady_state_without_realloc_thrash() {
        // Alternating checkouts of two sizes: after one buffer per size
        // class exists, every further checkout is a reuse.
        let arena = FrameArena::new();
        for _ in 0..8 {
            let small = arena.texture_zeroed(8, 8);
            let big = arena.texture_uninit(32, 32);
            arena.recycle_texture(small);
            arena.recycle_texture(big);
        }
        let s = arena.stats();
        assert_eq!(s.texture_allocations, 2, "one allocation per size class");
        assert_eq!(s.texture_reuses, 14);
        assert_eq!(arena.texture_size_classes(), 2);
    }

    #[test]
    fn command_vectors_round_trip_empty() {
        let arena = FrameArena::new();
        let mut v = arena.commands(8);
        v.push(RenderCommand::Clear);
        arena.recycle_commands(v);
        let v = arena.commands(4);
        assert!(v.is_empty());
        assert!(v.capacity() >= 4);
        let s = arena.stats();
        assert_eq!((s.command_allocations, s.command_reuses), (1, 1));
    }

    #[test]
    fn pool_is_bounded_per_size_class() {
        let arena = FrameArena::new();
        for _ in 0..2 * MAX_POOLED {
            arena.recycle_texture(Texture::new(2, 2));
        }
        assert_eq!(arena.pooled_textures(), MAX_POOLED);
        // A second size class has its own bound.
        for _ in 0..2 * MAX_POOLED {
            arena.recycle_texture(Texture::new(4, 4));
        }
        assert_eq!(arena.pooled_textures(), 2 * MAX_POOLED);
    }

    #[test]
    fn arena_is_shareable_across_threads() {
        let arena = std::sync::Arc::new(FrameArena::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let arena = std::sync::Arc::clone(&arena);
                scope.spawn(move || {
                    for _ in 0..16 {
                        let t = arena.texture_zeroed(8, 8);
                        arena.recycle_texture(t);
                    }
                });
            }
        });
        let s = arena.stats();
        assert_eq!(s.texture_allocations + s.texture_reuses, 64);
    }
}
