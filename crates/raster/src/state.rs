//! OpenGL-like state machine for a graphics pipe.
//!
//! The paper models each graphics pipe as "an OpenGL state machine which can
//! be set and queried through the OpenGL API". Setting state (most notably a
//! transformation matrix) forces synchronisation inside the pipe — on the
//! InfiniteReality the four geometry processors must be synchronised on every
//! matrix load — which is why the authors moved spot transformation to the
//! CPUs. The state machine here tracks the current state, detects redundant
//! changes, and counts the changes so the cost model can charge the
//! synchronisation penalty.

use crate::blend::BlendMode;
use flowfield::{Mat2, Vec2};
use serde::{Deserialize, Serialize};

/// Identifier of a texture object bound to the pipe.
pub type TextureId = u32;

/// How the bound spot texture is sampled when shading fragments.
///
/// `Exact` is the classic per-fragment bilinear filter — the mode every
/// result in the repository was produced with, and the default. `Footprint`
/// trades exactness for throughput on sampling-bound geometry (bent-spot
/// meshes): fragments nearest-sample a small prefiltered pyramid level
/// chosen per triangle from the uv extent, replacing the four-tap bilinear
/// kernel with a single fetch. Spot statistics survive this coarsening (the
/// speckle-measurement literature's license), which the quality metrics
/// gate; callers that need bit-exact output keep `Exact`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SamplingMode {
    /// Per-fragment bilinear sampling of the base texture (bit-exact mode).
    #[default]
    Exact,
    /// Nearest sampling of a footprint-selected prefiltered pyramid level.
    Footprint,
}

/// Counters of state-machine transitions, the input of the state-change
/// overhead term in the cost model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateChangeStats {
    /// Number of blend-mode changes applied.
    pub blend_changes: u64,
    /// Number of texture binds applied.
    pub texture_binds: u64,
    /// Number of transformation-matrix loads applied.
    pub matrix_loads: u64,
    /// Number of sampling-mode changes applied.
    pub sampling_changes: u64,
    /// Number of redundant state calls that were filtered out.
    pub redundant_filtered: u64,
}

impl StateChangeStats {
    /// Total state changes that actually hit the pipe (and therefore cost a
    /// synchronisation).
    pub fn total_changes(&self) -> u64 {
        self.blend_changes + self.texture_binds + self.matrix_loads + self.sampling_changes
    }

    /// Accumulates the counters of another stats block.
    pub fn merge(&mut self, other: &StateChangeStats) {
        self.blend_changes += other.blend_changes;
        self.texture_binds += other.texture_binds;
        self.matrix_loads += other.matrix_loads;
        self.sampling_changes += other.sampling_changes;
        self.redundant_filtered += other.redundant_filtered;
    }
}

/// An affine 2-D transform (linear part + translation) as loaded into the
/// pipe's "model-view matrix".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Transform2 {
    /// Linear part (rotation, scaling, shear).
    pub linear: Mat2,
    /// Translation applied after the linear part.
    pub translation: Vec2,
}

impl Transform2 {
    /// The identity transform.
    pub const IDENTITY: Transform2 = Transform2 {
        linear: Mat2::IDENTITY,
        translation: Vec2::ZERO,
    };

    /// Creates a transform from its parts.
    pub fn new(linear: Mat2, translation: Vec2) -> Self {
        Transform2 {
            linear,
            translation,
        }
    }

    /// Applies the transform to a point.
    pub fn apply(&self, p: Vec2) -> Vec2 {
        self.linear.apply(p) + self.translation
    }
}

impl Default for Transform2 {
    fn default() -> Self {
        Transform2::IDENTITY
    }
}

/// The mutable OpenGL-like state of one graphics pipe.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateMachine {
    blend: BlendMode,
    bound_texture: Option<TextureId>,
    transform: Transform2,
    sampling: SamplingMode,
    stats: StateChangeStats,
}

impl StateMachine {
    /// Creates a state machine in the default state (additive blending, no
    /// texture bound, identity transform, exact sampling).
    pub fn new() -> Self {
        StateMachine {
            blend: BlendMode::Additive,
            bound_texture: None,
            transform: Transform2::IDENTITY,
            sampling: SamplingMode::Exact,
            stats: StateChangeStats::default(),
        }
    }

    /// Current blend mode.
    pub fn blend(&self) -> BlendMode {
        self.blend
    }

    /// Current sampling mode.
    pub fn sampling(&self) -> SamplingMode {
        self.sampling
    }

    /// Currently bound texture, if any.
    pub fn bound_texture(&self) -> Option<TextureId> {
        self.bound_texture
    }

    /// Current transform.
    pub fn transform(&self) -> Transform2 {
        self.transform
    }

    /// Accumulated state-change statistics.
    pub fn stats(&self) -> StateChangeStats {
        self.stats
    }

    /// Resets the statistics counters (e.g. at the start of a frame).
    pub fn reset_stats(&mut self) {
        self.stats = StateChangeStats::default();
    }

    /// Sets the blend mode; redundant calls are filtered and do not count as
    /// a state change.
    pub fn set_blend(&mut self, blend: BlendMode) {
        if self.blend == blend {
            self.stats.redundant_filtered += 1;
        } else {
            self.blend = blend;
            self.stats.blend_changes += 1;
        }
    }

    /// Sets the sampling mode; redundant calls are filtered and do not count
    /// as a state change.
    pub fn set_sampling(&mut self, sampling: SamplingMode) {
        if self.sampling == sampling {
            self.stats.redundant_filtered += 1;
        } else {
            self.sampling = sampling;
            self.stats.sampling_changes += 1;
        }
    }

    /// Binds a spot texture; redundant binds are filtered.
    pub fn bind_texture(&mut self, id: TextureId) {
        if self.bound_texture == Some(id) {
            self.stats.redundant_filtered += 1;
        } else {
            self.bound_texture = Some(id);
            self.stats.texture_binds += 1;
        }
    }

    /// Loads a transformation matrix; redundant loads are filtered. Every
    /// non-redundant load costs a pipe synchronisation in the cost model,
    /// which is why the reference implementation performs spot
    /// transformations in software instead.
    pub fn load_transform(&mut self, t: Transform2) {
        if self.transform == t {
            self.stats.redundant_filtered += 1;
        } else {
            self.transform = t;
            self.stats.matrix_loads += 1;
        }
    }
}

impl Default for StateMachine {
    fn default() -> Self {
        StateMachine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blend::AlphaFactor;

    #[test]
    fn default_state() {
        let s = StateMachine::new();
        assert_eq!(s.blend(), BlendMode::Additive);
        assert_eq!(s.bound_texture(), None);
        assert_eq!(s.transform(), Transform2::IDENTITY);
        assert_eq!(s.stats().total_changes(), 0);
    }

    #[test]
    fn redundant_blend_changes_are_filtered() {
        let mut s = StateMachine::new();
        s.set_blend(BlendMode::Additive); // same as default
        assert_eq!(s.stats().blend_changes, 0);
        assert_eq!(s.stats().redundant_filtered, 1);
        s.set_blend(BlendMode::Max);
        assert_eq!(s.stats().blend_changes, 1);
        s.set_blend(BlendMode::Max);
        assert_eq!(s.stats().blend_changes, 1);
        assert_eq!(s.stats().redundant_filtered, 2);
    }

    #[test]
    fn texture_binds_counted_once_per_change() {
        let mut s = StateMachine::new();
        s.bind_texture(7);
        s.bind_texture(7);
        s.bind_texture(8);
        assert_eq!(s.bound_texture(), Some(8));
        assert_eq!(s.stats().texture_binds, 2);
        assert_eq!(s.stats().redundant_filtered, 1);
    }

    #[test]
    fn matrix_loads_counted_and_total() {
        let mut s = StateMachine::new();
        let t1 = Transform2::new(Mat2::rotation(0.3), Vec2::new(1.0, 2.0));
        let t2 = Transform2::new(Mat2::scale(2.0, 1.0), Vec2::ZERO);
        s.load_transform(t1);
        s.load_transform(t1);
        s.load_transform(t2);
        s.set_blend(BlendMode::Alpha(AlphaFactor::new(0.5)));
        s.bind_texture(1);
        assert_eq!(s.stats().matrix_loads, 2);
        assert_eq!(s.stats().total_changes(), 4);
    }

    #[test]
    fn reset_stats_clears_counters_but_not_state() {
        let mut s = StateMachine::new();
        s.bind_texture(3);
        s.set_blend(BlendMode::Max);
        s.reset_stats();
        assert_eq!(s.stats().total_changes(), 0);
        assert_eq!(s.bound_texture(), Some(3));
        assert_eq!(s.blend(), BlendMode::Max);
    }

    #[test]
    fn transform_apply_combines_linear_and_translation() {
        let t = Transform2::new(Mat2::scale(2.0, 3.0), Vec2::new(1.0, -1.0));
        let p = t.apply(Vec2::new(1.0, 1.0));
        assert_eq!(p, Vec2::new(3.0, 2.0));
    }

    #[test]
    fn stats_merge() {
        let mut a = StateChangeStats {
            blend_changes: 1,
            texture_binds: 2,
            matrix_loads: 3,
            sampling_changes: 1,
            redundant_filtered: 4,
        };
        a.merge(&StateChangeStats {
            blend_changes: 10,
            texture_binds: 20,
            matrix_loads: 30,
            sampling_changes: 2,
            redundant_filtered: 40,
        });
        assert_eq!(a.total_changes(), 69);
        assert_eq!(a.redundant_filtered, 44);
    }

    #[test]
    fn sampling_mode_changes_counted_and_filtered() {
        let mut s = StateMachine::new();
        assert_eq!(s.sampling(), SamplingMode::Exact);
        s.set_sampling(SamplingMode::Exact); // redundant: the default
        assert_eq!(s.stats().sampling_changes, 0);
        assert_eq!(s.stats().redundant_filtered, 1);
        s.set_sampling(SamplingMode::Footprint);
        assert_eq!(s.sampling(), SamplingMode::Footprint);
        assert_eq!(s.stats().sampling_changes, 1);
        assert_eq!(s.stats().total_changes(), 1);
    }
}
