//! Offline stand-in for `parking_lot`: a `Mutex` with the poison-free
//! `lock()` signature, delegating to `std::sync::Mutex` (a poisoned std lock
//! is recovered rather than propagated, matching parking_lot semantics).

use std::fmt;
use std::sync::{self, MutexGuard};

/// Mutual exclusion primitive with parking_lot's non-poisoning API.
#[derive(Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_guards_mutation() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 8000);
    }
}
