//! Numerical integration of particle trajectories through a vector field.
//!
//! Particle advection (pipeline step 2 in the paper) and stream-line
//! integration for bent spots both reduce to integrating `dx/dt = v(x)`.
//! Three explicit schemes are provided; RK4 is the default used by the
//! spot-noise pipeline, Euler is kept as the cheap/fast option the paper's
//! speed-vs-quality trade-off discussion alludes to.

use crate::grid::VectorField;
use crate::vec2::Vec2;
use serde::{Deserialize, Serialize};

/// Explicit integration scheme for `dx/dt = v(x)`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Integrator {
    /// Forward Euler: first order, one field evaluation per step.
    Euler,
    /// Midpoint (RK2): second order, two evaluations per step.
    Midpoint,
    /// Classical Runge–Kutta (RK4): fourth order, four evaluations per step.
    #[default]
    RungeKutta4,
}

impl Integrator {
    /// Number of field evaluations performed per step (used by the cost
    /// model to charge CPU time for particle advection).
    pub fn evals_per_step(self) -> usize {
        match self {
            Integrator::Euler => 1,
            Integrator::Midpoint => 2,
            Integrator::RungeKutta4 => 4,
        }
    }

    /// Advances position `p` by one step of size `dt` through `field`.
    pub fn step(self, field: &dyn VectorField, p: Vec2, dt: f64) -> Vec2 {
        match self {
            Integrator::Euler => p + field.velocity(p) * dt,
            Integrator::Midpoint => {
                let k1 = field.velocity(p);
                let k2 = field.velocity(p + k1 * (dt * 0.5));
                p + k2 * dt
            }
            Integrator::RungeKutta4 => {
                let k1 = field.velocity(p);
                let k2 = field.velocity(p + k1 * (dt * 0.5));
                let k3 = field.velocity(p + k2 * (dt * 0.5));
                let k4 = field.velocity(p + k3 * dt);
                p + (k1 + k2 * 2.0 + k3 * 2.0 + k4) * (dt / 6.0)
            }
        }
    }

    /// Advances `p` by `steps` equal sub-steps covering total time `t_total`.
    pub fn advect(self, field: &dyn VectorField, mut p: Vec2, t_total: f64, steps: usize) -> Vec2 {
        assert!(steps > 0, "need at least one sub-step");
        let dt = t_total / steps as f64;
        for _ in 0..steps {
            p = self.step(field, p, dt);
        }
        p
    }
}

/// Advects a whole slice of positions in place; the basic CPU work of the
/// "advect particles" pipeline stage.
pub fn advect_positions(
    field: &dyn VectorField,
    positions: &mut [Vec2],
    dt: f64,
    integrator: Integrator,
) {
    for p in positions.iter_mut() {
        *p = integrator.step(field, *p, dt);
    }
}

/// Integrates a trajectory and records every intermediate position
/// (including the start), clamping to the field domain.
pub fn trajectory(
    field: &dyn VectorField,
    start: Vec2,
    dt: f64,
    steps: usize,
    integrator: Integrator,
) -> Vec<Vec2> {
    let domain = field.domain();
    let mut out = Vec::with_capacity(steps + 1);
    let mut p = domain.clamp(start);
    out.push(p);
    for _ in 0..steps {
        p = domain.clamp(integrator.step(field, p, dt));
        out.push(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::{Uniform, Vortex};
    use crate::vec2::Rect;

    fn vortex() -> Vortex {
        Vortex {
            omega: 1.0,
            center: Vec2::ZERO,
            domain: Rect::new(Vec2::new(-2.0, -2.0), Vec2::new(2.0, 2.0)),
        }
    }

    #[test]
    fn uniform_flow_all_schemes_exact() {
        let f = Uniform {
            velocity: Vec2::new(1.0, 2.0),
            domain: Rect::UNIT,
        };
        for integ in [
            Integrator::Euler,
            Integrator::Midpoint,
            Integrator::RungeKutta4,
        ] {
            let p = integ.step(&f, Vec2::ZERO, 0.5);
            assert!((p.x - 0.5).abs() < 1e-12 && (p.y - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn rk4_conserves_vortex_radius_much_better_than_euler() {
        let f = vortex();
        let start = Vec2::new(1.0, 0.0);
        let total_time = std::f64::consts::PI; // half revolution
        let steps = 50;
        let euler = Integrator::Euler.advect(&f, start, total_time, steps);
        let rk4 = Integrator::RungeKutta4.advect(&f, start, total_time, steps);
        let euler_err = (euler.norm() - 1.0).abs();
        let rk4_err = (rk4.norm() - 1.0).abs();
        assert!(rk4_err < 1e-6, "rk4 radius error {rk4_err}");
        assert!(euler_err > 10.0 * rk4_err, "euler should be much worse");
    }

    #[test]
    fn rk4_half_revolution_lands_at_antipode() {
        let f = vortex();
        let p = Integrator::RungeKutta4.advect(&f, Vec2::new(1.0, 0.0), std::f64::consts::PI, 200);
        assert!((p.x + 1.0).abs() < 1e-5);
        assert!(p.y.abs() < 1e-5);
    }

    #[test]
    fn midpoint_between_euler_and_rk4_accuracy() {
        let f = vortex();
        let start = Vec2::new(1.0, 0.0);
        let t = 2.0;
        let steps = 40;
        let e = (Integrator::Euler.advect(&f, start, t, steps).norm() - 1.0).abs();
        let m = (Integrator::Midpoint.advect(&f, start, t, steps).norm() - 1.0).abs();
        let r = (Integrator::RungeKutta4.advect(&f, start, t, steps).norm() - 1.0).abs();
        assert!(m < e);
        assert!(r < m);
    }

    #[test]
    fn evals_per_step_matches_scheme() {
        assert_eq!(Integrator::Euler.evals_per_step(), 1);
        assert_eq!(Integrator::Midpoint.evals_per_step(), 2);
        assert_eq!(Integrator::RungeKutta4.evals_per_step(), 4);
    }

    #[test]
    fn advect_positions_updates_every_entry() {
        let f = Uniform {
            velocity: Vec2::new(1.0, 0.0),
            domain: Rect::UNIT,
        };
        let mut pos = vec![Vec2::ZERO, Vec2::new(0.5, 0.5)];
        advect_positions(&f, &mut pos, 0.25, Integrator::Euler);
        assert_eq!(pos[0], Vec2::new(0.25, 0.0));
        assert_eq!(pos[1], Vec2::new(0.75, 0.5));
    }

    #[test]
    fn trajectory_stays_in_domain_and_has_expected_length() {
        let f = Uniform {
            velocity: Vec2::new(10.0, 0.0),
            domain: Rect::UNIT,
        };
        let tr = trajectory(&f, Vec2::new(0.5, 0.5), 0.1, 20, Integrator::Euler);
        assert_eq!(tr.len(), 21);
        assert!(tr.iter().all(|p| f.domain().contains(*p)));
        // The trajectory saturates at the right edge rather than escaping.
        assert!((tr.last().unwrap().x - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one sub-step")]
    fn advect_requires_positive_steps() {
        let f = Uniform {
            velocity: Vec2::ZERO,
            domain: Rect::UNIT,
        };
        let _ = Integrator::Euler.advect(&f, Vec2::ZERO, 1.0, 0);
    }
}
