//! Particle ensembles with a life cycle.
//!
//! Spot-noise animation associates a particle with every spot (paper §2):
//! each frame, all particles are advected a small distance through the flow;
//! particles also have a finite life span and are re-seeded at a random
//! position when they die or leave the domain. Adjusting the "spot position
//! and spot life cycle" parameters is exactly what produces the lower image
//! of the paper's Figure 2.

use crate::grid::VectorField;
use crate::integrate::Integrator;
use crate::vec2::{Rect, Vec2};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A single particle: a position, the random intensity of its spot and its
/// remaining life span.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Particle {
    /// Current position in field coordinates.
    pub position: Vec2,
    /// The random spot scaling factor `a_i` (zero-mean).
    pub intensity: f64,
    /// Age of the particle in frames.
    pub age: u32,
    /// Number of frames the particle lives before being re-seeded.
    pub lifetime: u32,
}

impl Particle {
    /// Remaining life as a fraction in `[0, 1]` (1 = newborn, 0 = expiring).
    pub fn vitality(&self) -> f64 {
        if self.lifetime == 0 {
            return 0.0;
        }
        1.0 - (self.age as f64 / self.lifetime as f64).min(1.0)
    }
}

/// Parameters of the particle ensemble / spot life cycle.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ParticleOptions {
    /// Number of particles (spots per texture).
    pub count: usize,
    /// Mean lifetime in frames; individual lifetimes are jittered around it.
    pub mean_lifetime: u32,
    /// Relative jitter applied to lifetimes (0 = all equal).
    pub lifetime_jitter: f64,
    /// Amplitude of the zero-mean random intensities.
    pub intensity_amplitude: f64,
    /// Integration scheme for per-frame advection.
    pub integrator: Integrator,
    /// Sub-steps per frame advection.
    pub substeps: usize,
    /// If true, particles leaving the domain are immediately re-seeded;
    /// otherwise they are clamped to the boundary until they expire.
    pub reseed_on_exit: bool,
}

impl Default for ParticleOptions {
    fn default() -> Self {
        ParticleOptions {
            count: 1000,
            mean_lifetime: 50,
            lifetime_jitter: 0.25,
            intensity_amplitude: 1.0,
            integrator: Integrator::RungeKutta4,
            substeps: 1,
            reseed_on_exit: true,
        }
    }
}

/// Summary of what happened during one advection step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdvectionStats {
    /// Particles whose lifetime expired this frame.
    pub expired: usize,
    /// Particles re-seeded because they left the domain.
    pub exited: usize,
    /// Total particles advected.
    pub advected: usize,
}

/// A collection of particles tied to a flow domain, advanced frame by frame.
#[derive(Debug, Clone)]
pub struct ParticleEnsemble {
    particles: Vec<Particle>,
    options: ParticleOptions,
    domain: Rect,
    rng: ChaCha8Rng,
    frame: u64,
}

impl ParticleEnsemble {
    /// Seeds `options.count` particles uniformly at random in `domain`.
    pub fn new(domain: Rect, options: ParticleOptions, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let particles = (0..options.count)
            .map(|_| Self::spawn(&mut rng, domain, &options, true))
            .collect();
        ParticleEnsemble {
            particles,
            options,
            domain,
            rng,
            frame: 0,
        }
    }

    fn spawn(
        rng: &mut ChaCha8Rng,
        domain: Rect,
        options: &ParticleOptions,
        randomize_age: bool,
    ) -> Particle {
        let position = Vec2::new(
            rng.gen_range(domain.min.x..=domain.max.x),
            rng.gen_range(domain.min.y..=domain.max.y),
        );
        // Zero-mean random intensity, as required by the spot-noise model.
        let intensity = rng.gen_range(-options.intensity_amplitude..=options.intensity_amplitude);
        let jitter = 1.0 + options.lifetime_jitter * rng.gen_range(-1.0..=1.0);
        let lifetime = ((options.mean_lifetime as f64 * jitter).round() as u32).max(1);
        // New ensembles get random ages so that deaths are spread over time
        // instead of all particles expiring in the same frame.
        let age = if randomize_age {
            rng.gen_range(0..lifetime)
        } else {
            0
        };
        Particle {
            position,
            intensity,
            age,
            lifetime,
        }
    }

    /// Number of particles in the ensemble.
    pub fn len(&self) -> usize {
        self.particles.len()
    }

    /// True when the ensemble holds no particles.
    pub fn is_empty(&self) -> bool {
        self.particles.is_empty()
    }

    /// The particles in their current state.
    pub fn particles(&self) -> &[Particle] {
        &self.particles
    }

    /// The ensemble options.
    pub fn options(&self) -> &ParticleOptions {
        &self.options
    }

    /// The flow domain particles live in.
    pub fn domain(&self) -> Rect {
        self.domain
    }

    /// Number of frames advanced so far.
    pub fn frame(&self) -> u64 {
        self.frame
    }

    /// Advances the ensemble by one animation frame: every particle is
    /// advected over `dt`, aged, and re-seeded when it expires or exits.
    pub fn step(&mut self, field: &dyn VectorField, dt: f64) -> AdvectionStats {
        let mut stats = AdvectionStats {
            advected: self.particles.len(),
            ..Default::default()
        };
        let substeps = self.options.substeps.max(1);
        for particle in &mut self.particles {
            let moved = self
                .options
                .integrator
                .advect(field, particle.position, dt, substeps);
            particle.age += 1;

            let expired = particle.age >= particle.lifetime;
            let exited = !self.domain.contains(moved);
            if expired {
                stats.expired += 1;
            }
            if exited && !expired {
                stats.exited += 1;
            }

            if expired || (exited && self.options.reseed_on_exit) {
                *particle = Self::spawn(&mut self.rng, self.domain, &self.options, false);
            } else {
                particle.position = self.domain.clamp(moved);
            }
        }
        self.frame += 1;
        stats
    }

    /// Positions of all particles (the spot positions for the next texture).
    pub fn positions(&self) -> Vec<Vec2> {
        self.particles.iter().map(|p| p.position).collect()
    }

    /// Replaces all particle positions with fresh uniform random positions
    /// (the "default spot noise" mode, where positions are not advected).
    pub fn scramble_positions(&mut self) {
        for particle in &mut self.particles {
            particle.position = Vec2::new(
                self.rng.gen_range(self.domain.min.x..=self.domain.max.x),
                self.rng.gen_range(self.domain.min.y..=self.domain.max.y),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::Uniform;

    fn domain() -> Rect {
        Rect::new(Vec2::ZERO, Vec2::new(1.0, 1.0))
    }

    fn options(count: usize) -> ParticleOptions {
        ParticleOptions {
            count,
            mean_lifetime: 10,
            ..Default::default()
        }
    }

    #[test]
    fn ensemble_seeds_requested_count_inside_domain() {
        let e = ParticleEnsemble::new(domain(), options(128), 7);
        assert_eq!(e.len(), 128);
        assert!(!e.is_empty());
        assert!(e.particles().iter().all(|p| domain().contains(p.position)));
    }

    #[test]
    fn seeding_is_deterministic_per_seed() {
        let a = ParticleEnsemble::new(domain(), options(32), 42);
        let b = ParticleEnsemble::new(domain(), options(32), 42);
        let c = ParticleEnsemble::new(domain(), options(32), 43);
        for (pa, pb) in a.particles().iter().zip(b.particles()) {
            assert_eq!(pa.position, pb.position);
            assert_eq!(pa.intensity, pb.intensity);
        }
        // A different seed produces a different ensemble.
        assert!(a
            .particles()
            .iter()
            .zip(c.particles())
            .any(|(x, y)| x.position != y.position));
    }

    #[test]
    fn intensities_are_zero_mean_ish_and_bounded() {
        let e = ParticleEnsemble::new(domain(), options(4000), 3);
        let amp = e.options().intensity_amplitude;
        let mean: f64 = e.particles().iter().map(|p| p.intensity).sum::<f64>() / e.len() as f64;
        assert!(mean.abs() < 0.05, "sample mean {mean} too far from zero");
        assert!(e.particles().iter().all(|p| p.intensity.abs() <= amp));
    }

    #[test]
    fn step_advects_in_flow_direction() {
        let field = Uniform {
            velocity: Vec2::new(0.1, 0.0),
            domain: domain(),
        };
        let mut e = ParticleEnsemble::new(domain(), options(64), 11);
        let before = e.positions();
        let stats = e.step(&field, 0.5);
        assert_eq!(stats.advected, 64);
        let after = e.positions();
        // Particles that were not re-seeded moved right by 0.05.
        let mut moved = 0;
        for (b, a) in before.iter().zip(after.iter()) {
            if (a.x - b.x - 0.05).abs() < 1e-9 && (a.y - b.y).abs() < 1e-9 {
                moved += 1;
            }
        }
        assert!(moved > 32, "most particles should advect normally");
        assert_eq!(e.frame(), 1);
    }

    #[test]
    fn particles_expire_and_are_reseeded() {
        let field = Uniform {
            velocity: Vec2::ZERO,
            domain: domain(),
        };
        let mut opts = options(50);
        opts.mean_lifetime = 3;
        opts.lifetime_jitter = 0.0;
        let mut e = ParticleEnsemble::new(domain(), opts, 5);
        let mut total_expired = 0;
        for _ in 0..6 {
            total_expired += e.step(&field, 0.01).expired;
        }
        // With lifetime 3 and six frames every particle expired at least once.
        assert!(total_expired >= 50, "expired {total_expired}");
        // Ages stay below the lifetime after reseeding.
        assert!(e.particles().iter().all(|p| p.age < p.lifetime));
    }

    #[test]
    fn exiting_particles_are_reseeded_inside_domain() {
        let field = Uniform {
            velocity: Vec2::new(100.0, 0.0),
            domain: domain(),
        };
        let mut e = ParticleEnsemble::new(domain(), options(40), 9);
        let stats = e.step(&field, 1.0);
        assert!(stats.exited + stats.expired > 0);
        assert!(e.particles().iter().all(|p| domain().contains(p.position)));
    }

    #[test]
    fn clamping_mode_keeps_particles_on_boundary() {
        let field = Uniform {
            velocity: Vec2::new(100.0, 0.0),
            domain: domain(),
        };
        let mut opts = options(20);
        opts.reseed_on_exit = false;
        opts.mean_lifetime = 1000;
        opts.lifetime_jitter = 0.0;
        let mut e = ParticleEnsemble::new(domain(), opts, 13);
        e.step(&field, 1.0);
        // Everyone hit the right edge and stayed there.
        assert!(e
            .particles()
            .iter()
            .all(|p| (p.position.x - 1.0).abs() < 1e-12));
    }

    #[test]
    fn vitality_decreases_with_age() {
        let p = Particle {
            position: Vec2::ZERO,
            intensity: 0.0,
            age: 0,
            lifetime: 10,
        };
        assert!((p.vitality() - 1.0).abs() < 1e-12);
        let old = Particle { age: 10, ..p };
        assert!(old.vitality() <= 0.0 + 1e-12);
        let zero = Particle { lifetime: 0, ..p };
        assert_eq!(zero.vitality(), 0.0);
    }

    #[test]
    fn scramble_keeps_count_and_domain() {
        let mut e = ParticleEnsemble::new(domain(), options(30), 1);
        let before = e.positions();
        e.scramble_positions();
        let after = e.positions();
        assert_eq!(after.len(), 30);
        assert!(after.iter().all(|p| domain().contains(*p)));
        assert!(before.iter().zip(&after).any(|(a, b)| a != b));
    }
}
