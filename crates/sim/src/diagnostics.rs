//! Flow diagnostics for the DNS application.
//!
//! The paper's turbulence study asks how "the evolution of the vortex
//! shedding behind a block, the transition from laminar to turbulent flow"
//! relate to other quantities. To make the DNS substitute inspectable (and
//! regression-testable) this module provides a velocity probe that records a
//! time series at a point in the wake, a dominant-frequency estimate of that
//! series (the shedding frequency, i.e. a Strouhal-number proxy) and simple
//! energy statistics per frame.

use crate::dns::DnsSolver;
use flowfield::Vec2;
use serde::{Deserialize, Serialize};

/// A single probe sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProbeSample {
    /// Simulation time of the sample.
    pub time: f64,
    /// Velocity at the probe position.
    pub velocity: Vec2,
}

/// A velocity probe at a fixed position, accumulating a time series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WakeProbe {
    /// Probe position in world coordinates.
    pub position: Vec2,
    samples: Vec<ProbeSample>,
}

impl WakeProbe {
    /// Creates a probe at an explicit position.
    pub fn at(position: Vec2) -> Self {
        WakeProbe {
            position,
            samples: Vec::new(),
        }
    }

    /// Creates a probe one block-length downstream of the obstacle, on the
    /// channel centre line — the classic position for measuring shedding.
    pub fn behind_block(solver: &DnsSolver) -> Self {
        let block = solver.block().rect;
        let position = Vec2::new(block.max.x + 1.5 * block.width(), block.center().y);
        WakeProbe::at(position)
    }

    /// Records the current solver state.
    pub fn record(&mut self, solver: &DnsSolver) {
        self.samples.push(ProbeSample {
            time: solver.time(),
            velocity: solver.sample(self.position),
        });
    }

    /// The recorded samples.
    pub fn samples(&self) -> &[ProbeSample] {
        &self.samples
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean and standard deviation of the transverse (v) velocity — the
    /// fluctuation level that signals vortex shedding.
    pub fn transverse_stats(&self) -> (f64, f64) {
        if self.samples.is_empty() {
            return (0.0, 0.0);
        }
        let n = self.samples.len() as f64;
        let mean = self.samples.iter().map(|s| s.velocity.y).sum::<f64>() / n;
        let var = self
            .samples
            .iter()
            .map(|s| (s.velocity.y - mean) * (s.velocity.y - mean))
            .sum::<f64>()
            / n;
        (mean, var.sqrt())
    }

    /// Estimates the dominant oscillation frequency of the transverse
    /// velocity by scanning a discrete set of candidate frequencies with a
    /// direct Fourier projection (no FFT dependency needed for a few hundred
    /// samples). Returns `None` when fewer than 8 samples were recorded or
    /// the record has (near-)zero variance.
    pub fn dominant_frequency(&self) -> Option<f64> {
        if self.samples.len() < 8 {
            return None;
        }
        let t0 = self.samples.first().unwrap().time;
        let t1 = self.samples.last().unwrap().time;
        let span = t1 - t0;
        if span <= 0.0 {
            return None;
        }
        let (mean, std) = self.transverse_stats();
        if std < 1e-9 {
            return None;
        }
        let n = self.samples.len();
        // Candidate frequencies: 1..n/2 cycles over the record length.
        let mut best = (0.0f64, 0.0f64); // (power, frequency)
        for k in 1..(n / 2) {
            let f = k as f64 / span;
            let mut re = 0.0;
            let mut im = 0.0;
            for s in &self.samples {
                let phase = 2.0 * std::f64::consts::PI * f * (s.time - t0);
                let v = s.velocity.y - mean;
                re += v * phase.cos();
                im += v * phase.sin();
            }
            let power = re * re + im * im;
            if power > best.0 {
                best = (power, f);
            }
        }
        Some(best.1)
    }

    /// Strouhal-number proxy `f * L / U` using the block height as the
    /// length scale and the inflow speed as the velocity scale.
    pub fn strouhal(&self, solver: &DnsSolver) -> Option<f64> {
        let f = self.dominant_frequency()?;
        let length = solver.block().rect.height();
        let u = solver.config().inflow;
        if u <= 0.0 {
            return None;
        }
        Some(f * length / u)
    }
}

/// Per-frame energy statistics of the DNS state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Mean kinetic energy per node (0.5 * |u|^2).
    pub mean_kinetic_energy: f64,
    /// Maximum speed over the grid.
    pub max_speed: f64,
}

/// Computes the energy statistics of the current solver state.
pub fn energy_report(solver: &DnsSolver) -> EnergyReport {
    let grid = solver.velocity_grid();
    let mut sum = 0.0;
    let mut max_speed = 0.0f64;
    for v in grid.samples() {
        let s = v.norm();
        sum += 0.5 * s * s;
        max_speed = max_speed.max(s);
    }
    EnergyReport {
        mean_kinetic_energy: sum / grid.samples().len() as f64,
        max_speed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dns::{DnsConfig, DnsSolver};

    fn run_with_probe(steps: usize, record_every: usize) -> (DnsSolver, WakeProbe) {
        let mut solver = DnsSolver::new(DnsConfig::small_test());
        let mut probe = WakeProbe::behind_block(&solver);
        for k in 0..steps {
            solver.step(0.02);
            if k % record_every == 0 {
                probe.record(&solver);
            }
        }
        (solver, probe)
    }

    #[test]
    fn probe_records_samples_in_time_order() {
        let (_, probe) = run_with_probe(40, 2);
        assert_eq!(probe.len(), 20);
        assert!(!probe.is_empty());
        assert!(probe.samples().windows(2).all(|w| w[1].time > w[0].time));
    }

    #[test]
    fn probe_position_is_downstream_of_block() {
        let solver = DnsSolver::new(DnsConfig::small_test());
        let probe = WakeProbe::behind_block(&solver);
        assert!(probe.position.x > solver.block().rect.max.x);
        assert!(solver.config().domain.contains(probe.position));
    }

    #[test]
    fn empty_probe_statistics_are_safe() {
        let probe = WakeProbe::at(Vec2::new(1.0, 1.0));
        assert_eq!(probe.transverse_stats(), (0.0, 0.0));
        assert!(probe.dominant_frequency().is_none());
    }

    #[test]
    fn transverse_fluctuations_grow_as_the_wake_develops() {
        let (_, early) = run_with_probe(30, 1);
        let (_, late) = run_with_probe(260, 1);
        let (_, early_std) = early.transverse_stats();
        let (_, late_std) = late.transverse_stats();
        assert!(late_std >= early_std, "early {early_std}, late {late_std}");
        assert!(late_std.is_finite());
    }

    #[test]
    fn dominant_frequency_detects_a_synthetic_oscillation() {
        // Feed the probe a synthetic sine series and check the estimator.
        let mut probe = WakeProbe::at(Vec2::ZERO);
        let freq = 0.8; // cycles per time unit
        for k in 0..200 {
            let t = k as f64 * 0.05;
            probe.samples.push(ProbeSample {
                time: t,
                velocity: Vec2::new(1.0, (2.0 * std::f64::consts::PI * freq * t).sin()),
            });
        }
        let f = probe.dominant_frequency().unwrap();
        assert!((f - freq).abs() < 0.15, "estimated {f}, expected {freq}");
    }

    #[test]
    fn strouhal_proxy_is_in_a_plausible_range_when_shedding() {
        let (solver, probe) = run_with_probe(300, 1);
        // The coarse solver may or may not lock onto a clean shedding cycle,
        // but when a frequency is detected the Strouhal proxy must be a small
        // positive number (physical vortex streets sit around 0.1-0.3).
        if let Some(st) = probe.strouhal(&solver) {
            assert!(st > 0.0 && st < 2.0, "Strouhal proxy {st}");
        }
    }

    #[test]
    fn energy_report_is_positive_and_bounded() {
        let (solver, _) = run_with_probe(50, 5);
        let e = energy_report(&solver);
        assert!(e.mean_kinetic_energy > 0.0);
        assert!(e.max_speed > 0.5 * solver.config().inflow);
        assert!(e.max_speed < 10.0 * solver.config().inflow);
    }
}
