//! Field statistics and derived quantities.
//!
//! Spot transformation scales the spot along the local flow direction in
//! proportion to the velocity magnitude relative to the field's overall
//! magnitude range, so the synthesis pipeline needs cheap global statistics
//! of the sampled field. The DNS browser additionally reports vorticity and
//! a turbulence-intensity proxy per stored frame.

use crate::grid::{RegularGrid, ScalarGrid, VectorField};
use crate::vec2::{Rect, Vec2};
use serde::{Deserialize, Serialize};

/// Summary statistics of a vector field sampled on a lattice.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FieldStats {
    /// Minimum velocity magnitude over the sample lattice.
    pub min_speed: f64,
    /// Maximum velocity magnitude over the sample lattice.
    pub max_speed: f64,
    /// Mean velocity magnitude.
    pub mean_speed: f64,
    /// Standard deviation of the velocity magnitude (a turbulence-intensity
    /// proxy when normalised by the mean).
    pub std_speed: f64,
    /// Mean velocity vector.
    pub mean_velocity: Vec2,
    /// Number of samples used.
    pub samples: usize,
}

impl FieldStats {
    /// Relative fluctuation level `std_speed / mean_speed` (0 for uniform
    /// flow, large for turbulent flow). Returns 0 when the mean is ~0.
    pub fn turbulence_intensity(&self) -> f64 {
        if self.mean_speed.abs() < 1e-300 {
            0.0
        } else {
            self.std_speed / self.mean_speed
        }
    }
}

/// Computes [`FieldStats`] by sampling `field` on an `nx` x `ny` lattice.
pub fn field_stats(field: &dyn VectorField, nx: usize, ny: usize) -> FieldStats {
    assert!(nx >= 2 && ny >= 2, "need at least a 2x2 sampling lattice");
    let domain = field.domain();
    let mut min_speed = f64::INFINITY;
    let mut max_speed = f64::NEG_INFINITY;
    let mut sum_speed = 0.0;
    let mut sum_sq = 0.0;
    let mut sum_vel = Vec2::ZERO;
    let n = nx * ny;
    for j in 0..ny {
        for i in 0..nx {
            let uv = Vec2::new(i as f64 / (nx - 1) as f64, j as f64 / (ny - 1) as f64);
            let v = field.velocity(domain.from_unit(uv));
            let s = v.norm();
            min_speed = min_speed.min(s);
            max_speed = max_speed.max(s);
            sum_speed += s;
            sum_sq += s * s;
            sum_vel += v;
        }
    }
    let mean_speed = sum_speed / n as f64;
    let var = (sum_sq / n as f64 - mean_speed * mean_speed).max(0.0);
    FieldStats {
        min_speed,
        max_speed,
        mean_speed,
        std_speed: var.sqrt(),
        mean_velocity: sum_vel / n as f64,
        samples: n,
    }
}

/// Computes the scalar vorticity (curl) of a sampled vector grid using
/// central differences, returned as a scalar grid on the same lattice.
pub fn vorticity_grid(grid: &RegularGrid) -> ScalarGrid {
    let nx = grid.nx();
    let ny = grid.ny();
    let h = grid.spacing();
    let mut out = ScalarGrid::zeros(nx, ny, grid.domain());
    for j in 0..ny {
        for i in 0..nx {
            let ip = (i + 1).min(nx - 1);
            let im = i.saturating_sub(1);
            let jp = (j + 1).min(ny - 1);
            let jm = j.saturating_sub(1);
            let dx = (ip - im) as f64 * h.x;
            let dy = (jp - jm) as f64 * h.y;
            let dvdx = if dx > 0.0 {
                (grid.node(ip, j).y - grid.node(im, j).y) / dx
            } else {
                0.0
            };
            let dudy = if dy > 0.0 {
                (grid.node(i, jp).x - grid.node(i, jm).x) / dy
            } else {
                0.0
            };
            *out.node_mut(i, j) = dvdx - dudy;
        }
    }
    out
}

/// Computes the divergence of a sampled vector grid with central differences.
pub fn divergence_grid(grid: &RegularGrid) -> ScalarGrid {
    let nx = grid.nx();
    let ny = grid.ny();
    let h = grid.spacing();
    let mut out = ScalarGrid::zeros(nx, ny, grid.domain());
    for j in 0..ny {
        for i in 0..nx {
            let ip = (i + 1).min(nx - 1);
            let im = i.saturating_sub(1);
            let jp = (j + 1).min(ny - 1);
            let jm = j.saturating_sub(1);
            let dx = (ip - im) as f64 * h.x;
            let dy = (jp - jm) as f64 * h.y;
            let dudx = if dx > 0.0 {
                (grid.node(ip, j).x - grid.node(im, j).x) / dx
            } else {
                0.0
            };
            let dvdy = if dy > 0.0 {
                (grid.node(i, jp).y - grid.node(i, jm).y) / dy
            } else {
                0.0
            };
            *out.node_mut(i, j) = dudx + dvdy;
        }
    }
    out
}

/// The magnitude of a vector grid as a scalar grid (used for colormapped
/// overlays and for normalising spot stretch factors).
pub fn speed_grid(grid: &RegularGrid) -> ScalarGrid {
    let mut out = ScalarGrid::zeros(grid.nx(), grid.ny(), grid.domain());
    for j in 0..grid.ny() {
        for i in 0..grid.nx() {
            *out.node_mut(i, j) = grid.node(i, j).norm();
        }
    }
    out
}

/// A normalisation helper mapping speeds into `[0, 1]` given field statistics.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SpeedNormalizer {
    lo: f64,
    hi: f64,
}

impl SpeedNormalizer {
    /// Builds a normaliser from field statistics.
    pub fn from_stats(stats: &FieldStats) -> Self {
        SpeedNormalizer {
            lo: stats.min_speed,
            hi: stats.max_speed,
        }
    }

    /// Builds a normaliser from an explicit range.
    pub fn new(lo: f64, hi: f64) -> Self {
        SpeedNormalizer { lo, hi }
    }

    /// Maps a speed into `[0, 1]`; degenerate ranges map everything to 0.5.
    pub fn normalize(&self, speed: f64) -> f64 {
        let span = self.hi - self.lo;
        if span <= 1e-300 {
            0.5
        } else {
            ((speed - self.lo) / span).clamp(0.0, 1.0)
        }
    }
}

/// Relative L2 difference between two same-shaped scalar grids; used by the
/// tests that compare sequential and parallel texture synthesis and by the
/// DNS regression tests.
pub fn relative_l2_difference(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "grids must have the same shape");
    let mut num = 0.0;
    let mut den = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        num += (x - y) * (x - y);
        den += x * x;
    }
    if den <= 1e-300 {
        num.sqrt()
    } else {
        (num / den).sqrt()
    }
}

/// Samples a field along the boundary of a rectangle, returning positions and
/// tangential velocity components; the building block of the skin-friction
/// extraction in the DNS application.
pub fn boundary_tangential_flow(
    field: &dyn VectorField,
    rect: Rect,
    samples_per_side: usize,
) -> Vec<(Vec2, f64)> {
    assert!(samples_per_side >= 2);
    let corners = [
        (rect.min, Vec2::new(rect.max.x, rect.min.y)),
        (Vec2::new(rect.max.x, rect.min.y), rect.max),
        (rect.max, Vec2::new(rect.min.x, rect.max.y)),
        (Vec2::new(rect.min.x, rect.max.y), rect.min),
    ];
    let mut out = Vec::with_capacity(4 * samples_per_side);
    for (a, b) in corners {
        let tangent = (b - a).normalized();
        for k in 0..samples_per_side {
            let t = k as f64 / (samples_per_side - 1) as f64;
            let p = a.lerp(b, t);
            let v = field.velocity(p);
            out.push((p, v.dot(tangent)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::{Uniform, Vortex};
    use crate::grid::RegularGrid;

    fn dom() -> Rect {
        Rect::new(Vec2::new(-1.0, -1.0), Vec2::new(1.0, 1.0))
    }

    #[test]
    fn stats_of_uniform_field() {
        let f = Uniform {
            velocity: Vec2::new(3.0, 4.0),
            domain: dom(),
        };
        let s = field_stats(&f, 10, 10);
        assert!((s.min_speed - 5.0).abs() < 1e-12);
        assert!((s.max_speed - 5.0).abs() < 1e-12);
        assert!((s.mean_speed - 5.0).abs() < 1e-12);
        assert!(s.std_speed < 1e-9);
        assert!(s.turbulence_intensity() < 1e-9);
        assert_eq!(s.samples, 100);
    }

    #[test]
    fn stats_of_vortex_have_positive_spread() {
        let f = Vortex {
            omega: 1.0,
            center: Vec2::ZERO,
            domain: dom(),
        };
        let s = field_stats(&f, 20, 20);
        assert!(s.min_speed < s.max_speed);
        assert!(s.std_speed > 0.0);
        assert!(s.turbulence_intensity() > 0.0);
        // Mean velocity of a symmetric vortex is ~0.
        assert!(s.mean_velocity.norm() < 1e-9);
    }

    #[test]
    fn vorticity_grid_of_solid_body_rotation() {
        let f = Vortex {
            omega: 2.0,
            center: Vec2::ZERO,
            domain: dom(),
        };
        let g = RegularGrid::sample_field(21, 21, &f);
        let w = vorticity_grid(&g);
        // Curl of solid-body rotation is 2*omega everywhere (interior nodes).
        let v = w.node(10, 10);
        assert!((v - 4.0).abs() < 1e-6, "vorticity {v}");
    }

    #[test]
    fn divergence_grid_of_divergence_free_field_is_small() {
        let f = Vortex {
            omega: 1.0,
            center: Vec2::ZERO,
            domain: dom(),
        };
        let g = RegularGrid::sample_field(31, 31, &f);
        let d = divergence_grid(&g);
        let max_abs = d.samples().iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        assert!(max_abs < 1e-6, "max |div| = {max_abs}");
    }

    #[test]
    fn speed_grid_matches_node_norms() {
        let f = Uniform {
            velocity: Vec2::new(0.0, 2.0),
            domain: dom(),
        };
        let g = RegularGrid::sample_field(5, 5, &f);
        let s = speed_grid(&g);
        assert!(s.samples().iter().all(|&v| (v - 2.0).abs() < 1e-12));
    }

    #[test]
    fn normalizer_maps_range_to_unit_interval() {
        let n = SpeedNormalizer::new(2.0, 6.0);
        assert!((n.normalize(2.0) - 0.0).abs() < 1e-12);
        assert!((n.normalize(6.0) - 1.0).abs() < 1e-12);
        assert!((n.normalize(4.0) - 0.5).abs() < 1e-12);
        assert!((n.normalize(100.0) - 1.0).abs() < 1e-12);
        // Degenerate range maps to 0.5.
        let d = SpeedNormalizer::new(3.0, 3.0);
        assert!((d.normalize(3.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn relative_l2_identical_is_zero() {
        let a = vec![1.0, 2.0, 3.0];
        assert!(relative_l2_difference(&a, &a) < 1e-15);
        let b = vec![1.0, 2.0, 4.0];
        assert!(relative_l2_difference(&a, &b) > 0.0);
    }

    #[test]
    #[should_panic(expected = "same shape")]
    fn relative_l2_rejects_shape_mismatch() {
        let _ = relative_l2_difference(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn boundary_tangential_flow_of_uniform_field() {
        let f = Uniform {
            velocity: Vec2::new(1.0, 0.0),
            domain: dom(),
        };
        let block = Rect::new(Vec2::new(-0.2, -0.2), Vec2::new(0.2, 0.2));
        let samples = boundary_tangential_flow(&f, block, 5);
        assert_eq!(samples.len(), 20);
        // Bottom edge tangent is +x, top edge tangent is -x.
        assert!((samples[0].1 - 1.0).abs() < 1e-12);
        assert!((samples[10].1 + 1.0).abs() < 1e-12);
    }
}
