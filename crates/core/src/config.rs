//! Synthesis configuration.
//!
//! All tunable parameters of the spot-noise pipeline live here. The paper
//! emphasises that "because spot noise allows variation of parameters, speed
//! can be traded for quality" — the two preset constructors
//! [`SynthesisConfig::atmospheric_paper`] and
//! [`SynthesisConfig::turbulence_paper`] encode the exact parameter sets of
//! the two evaluation workloads (Tables 1 and 2), and the individual fields
//! are what the ablation benchmarks sweep.

use flowfield::Integrator;
use serde::{Deserialize, Serialize};
pub use softpipe::SamplingMode;

/// The geometric representation used for each spot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpotKind {
    /// A standard spot: one textured polygon with four vertices, rotated to
    /// the local flow direction and stretched by the local speed.
    Disc,
    /// A bent spot: a textured mesh tiled around an advected stream line
    /// (enhanced spot noise). `rows` vertices run along the stream line,
    /// `cols` across it; the paper uses 32x17 and 16x3.
    Bent {
        /// Vertices along the stream line.
        rows: usize,
        /// Vertices across the stream line.
        cols: usize,
    },
}

impl SpotKind {
    /// Number of vertices a single spot of this kind submits to the pipe.
    pub fn vertices_per_spot(&self) -> usize {
        match self {
            SpotKind::Disc => 4,
            SpotKind::Bent { rows, cols } => rows * cols,
        }
    }

    /// Number of quadrilaterals a single spot of this kind rasterizes.
    pub fn quads_per_spot(&self) -> usize {
        match self {
            SpotKind::Disc => 1,
            SpotKind::Bent { rows, cols } => (rows - 1) * (cols - 1),
        }
    }
}

/// Parameters of a spot-noise texture synthesis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SynthesisConfig {
    /// Final texture resolution (square, texels per side). Paper: 512.
    pub texture_size: usize,
    /// Number of spots per texture. Paper: 2 500 (atmospheric), 40 000 (DNS).
    pub spot_count: usize,
    /// Spot radius as a fraction of the texture side (an unstretched disc
    /// spot covers roughly `2 * radius * texture_size` pixels across).
    pub spot_radius: f64,
    /// Geometric representation of the spots.
    pub spot_kind: SpotKind,
    /// Resolution of the pre-rendered spot-function texture.
    pub spot_texture_size: usize,
    /// Relative width of the soft rim of the spot function.
    pub spot_softness: f32,
    /// Maximum elongation factor along the flow direction at the highest
    /// speed in the field (1.0 disables data-driven deformation).
    pub max_stretch: f64,
    /// Amplitude of the zero-mean random spot intensities.
    pub intensity_amplitude: f64,
    /// Integration scheme for stream lines and particle advection.
    pub integrator: Integrator,
    /// Random seed for spot positions and intensities.
    pub seed: u64,
    /// When true, spots are spatially partitioned into texture tiles (one
    /// tile per process group, overlap-boundary spots duplicated); when
    /// false, spots are dealt round-robin over process groups.
    pub use_tiling: bool,
    /// When true, standard (disc) spot transformation is performed on the
    /// graphics pipe by loading a per-spot transformation matrix instead of
    /// transforming the four vertices in software. The paper's reference
    /// implementation deliberately does *not* do this — "thus avoiding the
    /// high synchronization overhead costs for setting transformation
    /// matrices for each rendered spot" — and this switch exists to measure
    /// that trade-off (the `ablation_transform` bench). Ignored for bent
    /// spots, whose meshes must be computed in software anyway.
    pub transform_on_pipe: bool,
    /// Number of spots a master accumulates before streaming one
    /// [`RenderCommand::Batch`](softpipe::RenderCommand::Batch) to its pipe.
    /// Batching turns the per-spot channel round-trip (the dominant
    /// submission overhead at hundreds of thousands of spots per second)
    /// into one message per `spot_batch` spots, while staying small enough
    /// that the pipe keeps overlapping with shape computation. The
    /// `bench_raster` harness sweeps this knob ({16, 64, 256}).
    pub spot_batch: usize,
    /// How spot textures are sampled when shading fragments.
    /// [`SamplingMode::Exact`] (the default) is the classic per-fragment
    /// bilinear filter and is bit-identical to every result this repository
    /// has ever produced. [`SamplingMode::Footprint`] trades exactness for
    /// throughput on sampling-bound bent-spot meshes: fragments
    /// nearest-sample a small prefiltered pyramid level chosen from each
    /// triangle's uv extent — the paper's "speed can be traded for quality"
    /// knob for the fragment pipeline, gated by the [`crate::quality`]
    /// metrics.
    pub sampling: SamplingMode,
}

impl SynthesisConfig {
    /// A small, fast configuration for unit tests and the quickstart example.
    pub fn small_test() -> Self {
        SynthesisConfig {
            texture_size: 128,
            spot_count: 300,
            spot_radius: 0.03,
            spot_kind: SpotKind::Disc,
            spot_texture_size: 16,
            spot_softness: 0.5,
            max_stretch: 3.0,
            intensity_amplitude: 1.0,
            integrator: Integrator::RungeKutta4,
            seed: 42,
            use_tiling: false,
            transform_on_pipe: false,
            spot_batch: 64,
            sampling: SamplingMode::Exact,
        }
    }

    /// The atmospheric-pollution workload of Table 1: 512x512 texture,
    /// 2 500 bent spots with a 32x17 mesh each (~1.3 M quadrilaterals).
    pub fn atmospheric_paper() -> Self {
        SynthesisConfig {
            texture_size: 512,
            spot_count: 2500,
            spot_radius: 0.035,
            spot_kind: SpotKind::Bent { rows: 32, cols: 17 },
            spot_texture_size: 32,
            spot_softness: 0.5,
            max_stretch: 4.0,
            intensity_amplitude: 1.0,
            integrator: Integrator::RungeKutta4,
            seed: 1997,
            use_tiling: false,
            transform_on_pipe: false,
            spot_batch: 64,
            sampling: SamplingMode::Exact,
        }
    }

    /// The turbulent-flow workload of Table 2: 512x512 texture, 40 000 bent
    /// spots with a 16x3 mesh each (~1.9 M quadrilaterals).
    pub fn turbulence_paper() -> Self {
        SynthesisConfig {
            texture_size: 512,
            spot_count: 40_000,
            spot_radius: 0.012,
            spot_kind: SpotKind::Bent { rows: 16, cols: 3 },
            spot_texture_size: 16,
            spot_softness: 0.5,
            max_stretch: 4.0,
            intensity_amplitude: 1.0,
            integrator: Integrator::RungeKutta4,
            seed: 1997,
            use_tiling: false,
            transform_on_pipe: false,
            spot_batch: 64,
            sampling: SamplingMode::Exact,
        }
    }

    /// Spot radius in pixels of the final texture.
    pub fn spot_radius_pixels(&self) -> f64 {
        self.spot_radius * self.texture_size as f64
    }

    /// Total vertices submitted per texture (the quantity behind the paper's
    /// bandwidth estimates).
    pub fn vertices_per_texture(&self) -> usize {
        self.spot_count * self.spot_kind.vertices_per_spot()
    }

    /// Total quadrilaterals rasterized per texture.
    pub fn quads_per_texture(&self) -> usize {
        self.spot_count * self.spot_kind.quads_per_spot()
    }

    /// A stable content hash of the configuration, usable as (part of) a
    /// frame-cache key: two configs with identical parameters produce the
    /// same key in any process on any run, and any parameter change produces
    /// a different key. Every field is folded in — including knobs like
    /// [`spot_batch`](Self::spot_batch) that affect throughput but not the
    /// rendered texels — so the key is conservative: it never aliases two
    /// different configurations, at worst it declines to share cache entries
    /// between configs that happen to render identically.
    pub fn cache_key(&self) -> u64 {
        let mut h = crate::hash::StableHasher::new();
        h.write_str("SynthesisConfig/v1");
        h.write_usize(self.texture_size);
        h.write_usize(self.spot_count);
        h.write_f64(self.spot_radius);
        match self.spot_kind {
            SpotKind::Disc => h.write_u8(0),
            SpotKind::Bent { rows, cols } => {
                h.write_u8(1);
                h.write_usize(rows);
                h.write_usize(cols);
            }
        }
        h.write_usize(self.spot_texture_size);
        h.write_f32(self.spot_softness);
        h.write_f64(self.max_stretch);
        h.write_f64(self.intensity_amplitude);
        h.write_u8(match self.integrator {
            Integrator::Euler => 0,
            Integrator::Midpoint => 1,
            Integrator::RungeKutta4 => 2,
        });
        h.write_u64(self.seed);
        h.write_bool(self.use_tiling);
        h.write_bool(self.transform_on_pipe);
        h.write_usize(self.spot_batch);
        h.write_u8(match self.sampling {
            SamplingMode::Exact => 0,
            SamplingMode::Footprint => 1,
        });
        h.finish()
    }

    /// Validates parameter sanity, returning a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.texture_size < 8 {
            return Err(format!("texture_size {} too small", self.texture_size));
        }
        if self.spot_count == 0 {
            return Err("spot_count must be positive".to_string());
        }
        if !(self.spot_radius > 0.0 && self.spot_radius < 0.5) {
            return Err(format!("spot_radius {} out of (0, 0.5)", self.spot_radius));
        }
        if self.spot_texture_size < 2 {
            return Err("spot_texture_size must be at least 2".to_string());
        }
        if self.max_stretch < 1.0 {
            return Err(format!("max_stretch {} must be >= 1", self.max_stretch));
        }
        if let SpotKind::Bent { rows, cols } = self.spot_kind {
            if rows < 2 || cols < 2 {
                return Err(format!("bent spot mesh {rows}x{cols} must be at least 2x2"));
            }
        }
        if self.spot_batch == 0 {
            return Err("spot_batch must be at least 1".to_string());
        }
        Ok(())
    }
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        SynthesisConfig::small_test()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_workloads_match_reported_geometry_volumes() {
        let atm = SynthesisConfig::atmospheric_paper();
        // 2500 x 32 x 17 vertices ~ 1.36 M (paper: "approximately 1.3 million
        // quadrilaterals; i.e. 2500x32x17 vertices").
        assert_eq!(atm.vertices_per_texture(), 2500 * 32 * 17);
        assert_eq!(atm.quads_per_texture(), 2500 * 31 * 16);
        assert!(atm.validate().is_ok());

        let dns = SynthesisConfig::turbulence_paper();
        // 40000 x 16 x 3 vertices ~ 1.9 M quadrilaterals per texture.
        assert_eq!(dns.vertices_per_texture(), 40_000 * 16 * 3);
        assert_eq!(dns.quads_per_texture(), 40_000 * 15 * 2);
        assert!(dns.validate().is_ok());
    }

    #[test]
    fn spot_kind_counts() {
        assert_eq!(SpotKind::Disc.vertices_per_spot(), 4);
        assert_eq!(SpotKind::Disc.quads_per_spot(), 1);
        let bent = SpotKind::Bent { rows: 32, cols: 17 };
        assert_eq!(bent.vertices_per_spot(), 544);
        assert_eq!(bent.quads_per_spot(), 496);
    }

    #[test]
    fn radius_in_pixels() {
        let cfg = SynthesisConfig {
            texture_size: 512,
            spot_radius: 0.05,
            ..SynthesisConfig::small_test()
        };
        assert!((cfg.spot_radius_pixels() - 25.6).abs() < 1e-9);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let ok = SynthesisConfig::small_test();
        assert!(ok.validate().is_ok());
        assert!(SynthesisConfig {
            texture_size: 4,
            ..ok
        }
        .validate()
        .is_err());
        assert!(SynthesisConfig {
            spot_count: 0,
            ..ok
        }
        .validate()
        .is_err());
        assert!(SynthesisConfig {
            spot_radius: 0.9,
            ..ok
        }
        .validate()
        .is_err());
        assert!(SynthesisConfig {
            spot_radius: 0.0,
            ..ok
        }
        .validate()
        .is_err());
        assert!(SynthesisConfig {
            max_stretch: 0.5,
            ..ok
        }
        .validate()
        .is_err());
        assert!(SynthesisConfig {
            spot_texture_size: 1,
            ..ok
        }
        .validate()
        .is_err());
        assert!(SynthesisConfig {
            spot_kind: SpotKind::Bent { rows: 1, cols: 3 },
            ..ok
        }
        .validate()
        .is_err());
        assert!(SynthesisConfig {
            spot_batch: 0,
            ..ok
        }
        .validate()
        .is_err());
    }

    #[test]
    fn cache_key_is_stable_and_discriminating() {
        // Re-building an identical config hashes identically.
        assert_eq!(
            SynthesisConfig::small_test().cache_key(),
            SynthesisConfig::small_test().cache_key()
        );
        assert_eq!(
            SynthesisConfig::atmospheric_paper().cache_key(),
            SynthesisConfig::atmospheric_paper().cache_key()
        );

        // Every single-field perturbation produces a distinct key.
        let base = SynthesisConfig::small_test();
        let variants = [
            SynthesisConfig {
                texture_size: 256,
                ..base
            },
            SynthesisConfig {
                spot_count: 301,
                ..base
            },
            SynthesisConfig {
                spot_radius: 0.031,
                ..base
            },
            SynthesisConfig {
                spot_kind: SpotKind::Bent { rows: 8, cols: 3 },
                ..base
            },
            SynthesisConfig {
                spot_texture_size: 32,
                ..base
            },
            SynthesisConfig {
                spot_softness: 0.25,
                ..base
            },
            SynthesisConfig {
                max_stretch: 2.0,
                ..base
            },
            SynthesisConfig {
                intensity_amplitude: 0.5,
                ..base
            },
            SynthesisConfig {
                integrator: Integrator::Euler,
                ..base
            },
            SynthesisConfig { seed: 43, ..base },
            SynthesisConfig {
                use_tiling: true,
                ..base
            },
            SynthesisConfig {
                transform_on_pipe: true,
                ..base
            },
            SynthesisConfig {
                spot_batch: 65,
                ..base
            },
            SynthesisConfig {
                sampling: SamplingMode::Footprint,
                ..base
            },
        ];
        let mut keys = vec![base.cache_key()];
        for v in variants {
            keys.push(v.cache_key());
        }
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert_ne!(keys[i], keys[j], "variants {i} and {j} collided");
            }
        }

        // Bent meshes with swapped dimensions are different configs.
        let a = SynthesisConfig {
            spot_kind: SpotKind::Bent { rows: 8, cols: 3 },
            ..base
        };
        let b = SynthesisConfig {
            spot_kind: SpotKind::Bent { rows: 3, cols: 8 },
            ..base
        };
        assert_ne!(a.cache_key(), b.cache_key());
    }

    #[test]
    fn default_is_small_test() {
        assert_eq!(SynthesisConfig::default(), SynthesisConfig::small_test());
    }
}
