//! Arrow plots — the baseline the paper replaced.
//!
//! "In [6] arrow plots were used to display the wind fields, which we have
//! now replaced with spot noise textures." The arrow plot is kept as the
//! baseline visualization: it shows the field only at discrete positions,
//! which is exactly the limitation spot noise removes. The benchmark harness
//! also uses it to compare the rendering cost of the two techniques.

use flowfield::{Vec2, VectorField};
use softpipe::{Framebuffer, Rgb};

/// Parameters of an arrow plot.
#[derive(Debug, Clone, Copy)]
pub struct ArrowPlotOptions {
    /// Number of arrows along x.
    pub nx: usize,
    /// Number of arrows along y.
    pub ny: usize,
    /// Length in pixels of an arrow at the field's maximum speed.
    pub max_length_pixels: f64,
    /// Arrow colour.
    pub color: Rgb,
}

impl Default for ArrowPlotOptions {
    fn default() -> Self {
        ArrowPlotOptions {
            nx: 24,
            ny: 24,
            max_length_pixels: 14.0,
            color: Rgb::new(230, 230, 230),
        }
    }
}

/// Draws an arrow plot of `field` over the whole framebuffer.
/// Returns the number of arrows actually drawn (stagnant samples are
/// skipped).
pub fn arrow_plot(fb: &mut Framebuffer, field: &dyn VectorField, opts: &ArrowPlotOptions) -> usize {
    assert!(
        opts.nx >= 2 && opts.ny >= 2,
        "need at least a 2x2 arrow grid"
    );
    let domain = field.domain();
    // Normalise by the maximum speed over the arrow lattice.
    let mut max_speed = 0.0f64;
    for j in 0..opts.ny {
        for i in 0..opts.nx {
            let uv = Vec2::new(
                (i as f64 + 0.5) / opts.nx as f64,
                (j as f64 + 0.5) / opts.ny as f64,
            );
            max_speed = max_speed.max(field.velocity(domain.from_unit(uv)).norm());
        }
    }
    if max_speed <= 0.0 {
        return 0;
    }
    let mut drawn = 0;
    for j in 0..opts.ny {
        for i in 0..opts.nx {
            let uv = Vec2::new(
                (i as f64 + 0.5) / opts.nx as f64,
                (j as f64 + 0.5) / opts.ny as f64,
            );
            let p = domain.from_unit(uv);
            let v = field.velocity(p);
            let speed = v.norm();
            if speed < 1e-9 * max_speed {
                continue;
            }
            let dir = v / speed;
            let len = opts.max_length_pixels * (speed / max_speed);
            let base = Vec2::new(uv.x * fb.width() as f64, uv.y * fb.height() as f64);
            let tip = base + dir * len;
            fb.draw_line(base.x, base.y, tip.x, tip.y, opts.color);
            // Arrow head: two short strokes at +-150 degrees from the shaft.
            let head = len * 0.35;
            for angle in [2.6, -2.6] {
                let h = tip + dir.rotated(angle) * head;
                fb.draw_line(tip.x, tip.y, h.x, h.y, opts.color);
            }
            drawn += 1;
        }
    }
    drawn
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowfield::analytic::{Uniform, Vortex};
    use flowfield::Rect;

    fn fb() -> Framebuffer {
        Framebuffer::new(128, 128)
    }

    fn domain() -> Rect {
        Rect::new(Vec2::ZERO, Vec2::new(1.0, 1.0))
    }

    #[test]
    fn arrow_plot_draws_expected_count() {
        let mut fb = fb();
        let field = Uniform {
            velocity: Vec2::new(1.0, 0.0),
            domain: domain(),
        };
        let n = arrow_plot(&mut fb, &field, &ArrowPlotOptions::default());
        assert_eq!(n, 24 * 24);
        // Something was drawn.
        let lit = fb.pixels().iter().filter(|p| p.r > 0).count();
        assert!(lit > 500, "only {lit} pixels lit");
    }

    #[test]
    fn stagnant_field_draws_nothing() {
        let mut fb = fb();
        let field = Uniform {
            velocity: Vec2::ZERO,
            domain: domain(),
        };
        let n = arrow_plot(&mut fb, &field, &ArrowPlotOptions::default());
        assert_eq!(n, 0);
        assert!(fb.pixels().iter().all(|p| *p == Rgb::default()));
    }

    #[test]
    fn vortex_arrows_skip_centre_only() {
        let mut fb = fb();
        let field = Vortex {
            omega: 1.0,
            center: Vec2::new(0.5, 0.5),
            domain: domain(),
        };
        let n = arrow_plot(
            &mut fb,
            &field,
            &ArrowPlotOptions {
                nx: 11,
                ny: 11,
                ..Default::default()
            },
        );
        assert!(n >= 11 * 11 - 1);
    }

    #[test]
    #[should_panic(expected = "2x2 arrow grid")]
    fn degenerate_grid_rejected() {
        let mut fb = fb();
        let field = Uniform {
            velocity: Vec2::new(1.0, 0.0),
            domain: domain(),
        };
        let _ = arrow_plot(
            &mut fb,
            &field,
            &ArrowPlotOptions {
                nx: 1,
                ny: 8,
                ..Default::default()
            },
        );
    }
}
