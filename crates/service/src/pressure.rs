//! Pressure sensing and the graceful-degradation ladder.
//!
//! Overload used to have exactly two behaviours: serve normally, or shed
//! with `503 Busy` once the admission queue hit its watermark. That cliff
//! wastes the middle ground — a saturated broadcast channel can serve its
//! cached frontier frame instead of queueing, and a private session can
//! drop from exact to footprint sampling (the paper's own accuracy/speed
//! dial) long before a shed is warranted. The [`PressureGauge`] is the
//! sensor that drives that ladder: a tri-state
//! [`PressureState`] derived from instantaneous queue depth and the
//! *windowed* queue-wait latency between evaluations.
//!
//! ## Signals
//!
//! * **queue depth / watermark** — instantaneous saturation of admission
//!   control;
//! * **windowed mean queue wait** — the mean of `queue_wait` samples
//!   recorded since the previous evaluation (the service histograms are
//!   monotonic since process start, so an all-time percentile would never
//!   recover after one bad burst; the window forgets).
//!
//! ## Ladder semantics (applied by the server)
//!
//! | state | behaviour |
//! |---|---|
//! | healthy | normal service |
//! | elevated | channel look-ahead disabled (no speculative synthesis) |
//! | saturated | shared subscribers get the cached frontier (`X-Frame-Stale`), non-pinned exact sessions drop to footprint sampling (`X-Frame-Degraded`), then shed |
//!
//! Evaluation is throttled (snapshotting a histogram allocates) and
//! de-escalation is held down for [`PressureConfig::hold`] so the state
//! doesn't flap between ladder rungs on every quiet millisecond.

use spotnoise::telemetry::Histogram;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::{Duration, Instant};

/// The service's load condition, coarse enough to act on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PressureState {
    /// Normal service: full look-ahead, exact sampling, no staleness.
    Healthy = 0,
    /// Load is building: speculative work (channel look-ahead) is shut off.
    Elevated = 1,
    /// The queue is effectively full: degrade before shedding.
    Saturated = 2,
}

impl PressureState {
    fn from_u8(v: u8) -> PressureState {
        match v {
            2 => PressureState::Saturated,
            1 => PressureState::Elevated,
            _ => PressureState::Healthy,
        }
    }

    /// The wire name reported on `/healthz` and `/stats`.
    pub fn name(self) -> &'static str {
        match self {
            PressureState::Healthy => "ok",
            PressureState::Elevated => "elevated",
            PressureState::Saturated => "saturated",
        }
    }
}

/// Thresholds and cadence of pressure evaluation.
#[derive(Debug, Clone, Copy)]
pub struct PressureConfig {
    /// Minimum spacing between evaluations (each snapshots a histogram).
    pub eval_interval: Duration,
    /// How long a non-healthy state is held after its signal last fired;
    /// prevents the ladder from flapping on every quiet window.
    pub hold: Duration,
    /// Windowed mean queue wait at which pressure is at least elevated.
    pub elevated_wait: Duration,
    /// Windowed mean queue wait at which pressure is saturated.
    pub saturated_wait: Duration,
}

impl Default for PressureConfig {
    fn default() -> Self {
        PressureConfig {
            eval_interval: Duration::from_millis(100),
            hold: Duration::from_secs(2),
            elevated_wait: Duration::from_millis(20),
            saturated_wait: Duration::from_millis(200),
        }
    }
}

/// Counter snapshot of a gauge for `/stats` and `/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PressureCounters {
    /// Transitions into [`PressureState::Elevated`].
    pub entered_elevated: u64,
    /// Transitions into [`PressureState::Saturated`].
    pub entered_saturated: u64,
    /// Transitions back down the ladder (to any lower state).
    pub recovered: u64,
}

/// The lock-free pressure sensor. All methods take `&self`; evaluation is
/// claimed by compare-and-swap so concurrent callers never double-count a
/// transition.
pub struct PressureGauge {
    config: PressureConfig,
    started: Instant,
    state: AtomicU8,
    /// Microseconds (since `started`) of the last *claimed* evaluation.
    last_eval_us: AtomicU64,
    /// Microseconds of the last instant the signal justified the current
    /// (non-healthy) state — de-escalation waits `hold` past this.
    last_signal_us: AtomicU64,
    /// Queue-wait histogram cursor of the previous evaluation window.
    seen_count: AtomicU64,
    seen_sum: AtomicU64,
    /// All-time queue-wait p99 cached at the last evaluation; the deadline
    /// admission check reads this instead of snapshotting per request.
    wait_p99_us: AtomicU64,
    entered_elevated: AtomicU64,
    entered_saturated: AtomicU64,
    recovered: AtomicU64,
}

impl PressureGauge {
    /// Creates a healthy gauge.
    pub fn new(config: PressureConfig) -> Self {
        PressureGauge {
            config,
            started: Instant::now(),
            state: AtomicU8::new(PressureState::Healthy as u8),
            last_eval_us: AtomicU64::new(0),
            last_signal_us: AtomicU64::new(0),
            seen_count: AtomicU64::new(0),
            seen_sum: AtomicU64::new(0),
            wait_p99_us: AtomicU64::new(0),
            entered_elevated: AtomicU64::new(0),
            entered_saturated: AtomicU64::new(0),
            recovered: AtomicU64::new(0),
        }
    }

    /// The current state (one relaxed load; safe on any hot path).
    pub fn state(&self) -> PressureState {
        PressureState::from_u8(self.state.load(Ordering::Relaxed))
    }

    /// The all-time queue-wait p99 cached at the last evaluation — the
    /// deadline admission check's estimate of what a newly queued job will
    /// wait.
    pub fn queue_wait_p99(&self) -> Duration {
        Duration::from_micros(self.wait_p99_us.load(Ordering::Relaxed))
    }

    /// Transition counters.
    pub fn counters(&self) -> PressureCounters {
        PressureCounters {
            entered_elevated: self.entered_elevated.load(Ordering::Relaxed),
            entered_saturated: self.entered_saturated.load(Ordering::Relaxed),
            recovered: self.recovered.load(Ordering::Relaxed),
        }
    }

    /// Re-evaluates pressure from the queue's instantaneous depth and the
    /// queue-wait histogram, throttled to
    /// [`PressureConfig::eval_interval`]. Returns the (possibly updated)
    /// state; when throttled, the current state comes back untouched.
    pub fn evaluate(&self, depth: usize, watermark: usize, wait: &Histogram) -> PressureState {
        let now_us = self.started.elapsed().as_micros() as u64;
        let last = self.last_eval_us.load(Ordering::Relaxed);
        let interval_us = self.config.eval_interval.as_micros() as u64;
        // `last == 0` is the virgin gauge: evaluate immediately so a burst
        // right after startup is seen on its first request.
        if last != 0 && now_us.saturating_sub(last) < interval_us {
            return self.state();
        }
        if self
            .last_eval_us
            .compare_exchange(last, now_us.max(1), Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            // Another caller claimed this window.
            return self.state();
        }

        let snap = wait.snapshot();
        self.wait_p99_us
            .store(snap.percentile(99.0), Ordering::Relaxed);
        let seen_count = self.seen_count.swap(snap.count, Ordering::Relaxed);
        let seen_sum = self.seen_sum.swap(snap.sum, Ordering::Relaxed);
        let window_count = snap.count.saturating_sub(seen_count);
        let window_mean_us = snap
            .sum
            .saturating_sub(seen_sum)
            .checked_div(window_count)
            .unwrap_or(0);

        // The depth signal is instantaneous; the wait signal is the mean of
        // the window just closed. Either can escalate.
        let watermark = watermark.max(1);
        let depth_state = if depth * 4 >= watermark * 3 {
            PressureState::Saturated
        } else if depth * 2 >= watermark {
            PressureState::Elevated
        } else {
            PressureState::Healthy
        };
        let wait_state = if window_mean_us >= self.config.saturated_wait.as_micros() as u64 {
            PressureState::Saturated
        } else if window_mean_us >= self.config.elevated_wait.as_micros() as u64 {
            PressureState::Elevated
        } else {
            PressureState::Healthy
        };
        let signal = depth_state.max(wait_state);

        let current = self.state();
        let next = if signal >= current {
            // Escalation (or re-confirmation) applies immediately.
            self.last_signal_us.store(now_us.max(1), Ordering::Relaxed);
            signal
        } else {
            // De-escalation only after the hold has elapsed since the
            // signal last justified the current state.
            let signal_at = self.last_signal_us.load(Ordering::Relaxed);
            let hold_us = self.config.hold.as_micros() as u64;
            if now_us.saturating_sub(signal_at) >= hold_us {
                signal
            } else {
                current
            }
        };
        if next != current {
            self.state.store(next as u8, Ordering::Relaxed);
            match next {
                PressureState::Elevated if next > current => {
                    self.entered_elevated.fetch_add(1, Ordering::Relaxed);
                }
                PressureState::Saturated => {
                    self.entered_saturated.fetch_add(1, Ordering::Relaxed);
                    if current == PressureState::Healthy {
                        // A straight healthy→saturated jump passed through
                        // elevated conceptually; count both rungs so the
                        // transition counters always tell the full story.
                        self.entered_elevated.fetch_add(1, Ordering::Relaxed);
                    }
                }
                _ => {
                    self.recovered.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        next
    }
}

impl std::fmt::Debug for PressureGauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PressureGauge")
            .field("state", &self.state())
            .field("counters", &self.counters())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> PressureConfig {
        PressureConfig {
            eval_interval: Duration::from_millis(0),
            hold: Duration::from_millis(0),
            ..PressureConfig::default()
        }
    }

    #[test]
    fn depth_signal_walks_the_ladder() {
        let g = PressureGauge::new(quick_config());
        let wait = Histogram::new();
        assert_eq!(g.evaluate(0, 8, &wait), PressureState::Healthy);
        assert_eq!(g.evaluate(4, 8, &wait), PressureState::Elevated);
        assert_eq!(g.evaluate(6, 8, &wait), PressureState::Saturated);
        assert_eq!(g.evaluate(0, 8, &wait), PressureState::Healthy);
        let c = g.counters();
        assert_eq!(c.entered_elevated, 1);
        assert_eq!(c.entered_saturated, 1);
        assert_eq!(c.recovered, 1);
        // A straight healthy→saturated jump counts both rungs.
        assert_eq!(g.evaluate(8, 8, &wait), PressureState::Saturated);
        let c = g.counters();
        assert_eq!(c.entered_elevated, 2);
        assert_eq!(c.entered_saturated, 2);
    }

    #[test]
    fn windowed_wait_escalates_and_forgets() {
        let g = PressureGauge::new(quick_config());
        let wait = Histogram::new();
        // 50 ms mean queue wait in this window: elevated.
        wait.record(50_000);
        assert_eq!(g.evaluate(0, 64, &wait), PressureState::Elevated);
        // No new samples in the next window: the bad burst is forgotten.
        assert_eq!(g.evaluate(0, 64, &wait), PressureState::Healthy);
        // A saturating burst.
        for _ in 0..4 {
            wait.record(300_000);
        }
        assert_eq!(g.evaluate(0, 64, &wait), PressureState::Saturated);
        assert!(g.queue_wait_p99() >= Duration::from_millis(200));
    }

    #[test]
    fn hold_keeps_the_state_up_between_quiet_windows() {
        let g = PressureGauge::new(PressureConfig {
            eval_interval: Duration::from_millis(0),
            hold: Duration::from_secs(60),
            ..PressureConfig::default()
        });
        let wait = Histogram::new();
        assert_eq!(g.evaluate(6, 8, &wait), PressureState::Saturated);
        // The signal cleared but the hold has not elapsed.
        assert_eq!(g.evaluate(0, 8, &wait), PressureState::Saturated);
        assert_eq!(g.counters().recovered, 0);
    }

    #[test]
    fn evaluation_is_throttled_between_intervals() {
        let g = PressureGauge::new(PressureConfig {
            eval_interval: Duration::from_secs(60),
            ..PressureConfig::default()
        });
        let wait = Histogram::new();
        // First call claims the window; the second is throttled and must
        // not see the new depth.
        assert_eq!(g.evaluate(0, 8, &wait), PressureState::Healthy);
        assert_eq!(g.evaluate(8, 8, &wait), PressureState::Healthy);
    }
}
