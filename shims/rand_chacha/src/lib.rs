//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 block cipher core
//! driving the shim `rand` traits. Key expansion from a 64-bit seed uses
//! SplitMix64 (the same approach the real `SeedableRng::seed_from_u64`
//! takes), so streams are deterministic per seed but not byte-identical to
//! the crates.io implementation — nothing in the workspace depends on the
//! exact stream, only on seeded determinism and uniformity.

use rand::{RngCore, SeedableRng};

/// A ChaCha stream cipher based generator with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    idx: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [0; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // state[14..16] is the nonce, fixed to zero.
        let input = state;
        for _ in 0..4 {
            // One double round: column round + diagonal round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, (s, i)) in self.buf.iter_mut().zip(state.iter().zip(input.iter())) {
            *out = s.wrapping_add(*i);
        }
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 key expansion.
        let mut s = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            pair[0] = z as u32;
            if pair.len() > 1 {
                pair[1] = (z >> 32) as u32;
            }
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }

    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn roughly_uniform_unit_samples() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
