//! Reproduction harness: regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p spotnoise-bench --bin reproduce -- all
//! cargo run --release -p spotnoise-bench --bin reproduce -- table1 table2
//! cargo run --release -p spotnoise-bench --bin reproduce -- figure6 --out results
//! cargo run --release -p spotnoise-bench --bin reproduce -- table1 --quick
//! ```
//!
//! Outputs:
//! * tables are printed to stdout (simulated Onyx2 throughput next to the
//!   paper's published numbers and the measured host throughput) and written
//!   as JSON to `<out>/tableN.json`;
//! * figures are written as PPM images to `<out>/figureN*.ppm`.

use flowfield::particles::ParticleOptions;
use flowfield::{Rect, Vec2};
use flowsim::{pattern_from_dns, skin_friction_field, DnsConfig, DnsSolver, SmogModel};
use flowviz::{
    draw_map, draw_rect_outline, overlay_scalar_field, texture_to_framebuffer, Colormap,
};
use softpipe::machine::MachineConfig;
use softpipe::Rgb;
use spotnoise::advect::PositionMode;
use spotnoise::config::{SpotKind, SynthesisConfig};
use spotnoise::dnc::synthesize_dnc;
use spotnoise::filter::standard_postprocess;
use spotnoise::pipeline::{ExecutionMode, Pipeline};
use spotnoise::spot::generate_spots;
use spotnoise::synth::synthesize_sequential;
use spotnoise_bench::{
    atmospheric_paper, atmospheric_scaled, format_table, paper_table1, paper_table2,
    run_table_sweep, turbulence_paper, turbulence_scaled, SweepCell, Workload,
};
use std::path::{Path, PathBuf};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut targets = Vec::new();
    let mut out_dir = PathBuf::from("results");
    let mut quick = false;
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => {
                if let Some(dir) = iter.next() {
                    out_dir = PathBuf::from(dir);
                }
            }
            "--quick" => quick = true,
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() || targets.iter().any(|t| t == "all") {
        targets = vec![
            "table1",
            "table2",
            "figure1",
            "figure2",
            "figure6",
            "figure7",
            "bandwidth",
            "pipeline",
        ]
        .into_iter()
        .map(String::from)
        .collect();
    }
    std::fs::create_dir_all(&out_dir).expect("cannot create output directory");

    for target in &targets {
        match target.as_str() {
            "table1" => reproduce_table(1, quick, &out_dir),
            "table2" => reproduce_table(2, quick, &out_dir),
            "figure1" => figure1(&out_dir),
            "figure2" => figure2(&out_dir),
            "figure6" => figure6(&out_dir, quick),
            "figure7" => figure7(&out_dir, quick),
            "bandwidth" => bandwidth(quick),
            "pipeline" => pipeline_breakdown(),
            unknown => eprintln!("unknown target: {unknown}"),
        }
    }
}

fn reproduce_table(which: u8, quick: bool, out_dir: &Path) {
    let (workload, published) = match (which, quick) {
        (1, false) => (atmospheric_paper(), paper_table1()),
        (1, true) => (atmospheric_scaled(), paper_table1()),
        (2, false) => (turbulence_paper(), paper_table2()),
        (2, true) => (turbulence_scaled(), paper_table2()),
        _ => unreachable!(),
    };
    println!("=== Table {which}: {} ===", workload.name);
    println!(
        "{} spots of kind {:?}, {}x{} texture, {} vertices/texture",
        workload.config.spot_count,
        workload.config.spot_kind,
        workload.config.texture_size,
        workload.config.texture_size,
        workload.config.vertices_per_texture(),
    );
    let cells = run_table_sweep(&workload);
    println!("\nSimulated Onyx2 textures/second (cost model, this reproduction):");
    println!("{}", format_table(&cells, true));
    println!("Published textures/second (paper Table {which}):");
    println!("{}", format_published(&published));
    println!("Measured host wall-clock textures/second (this machine, software pipes):");
    println!("{}", format_table(&cells, false));
    let json = spotnoise_bench::json::sweep_cells_to_json(&cells);
    let path = out_dir.join(format!("table{which}.json"));
    std::fs::write(&path, json).expect("write table json");
    println!("wrote {}\n", path.display());
    summarize_shape(&cells, &published);
}

fn format_published(published: &[(usize, usize, f64)]) -> String {
    let cells: Vec<SweepCell> = published
        .iter()
        .map(|&(p, g, v)| SweepCell {
            processors: p,
            pipes: g,
            simulated_textures_per_second: v,
            measured_textures_per_second: v,
            prediction: spotnoise::perfmodel::PerfPrediction {
                group_seconds: vec![],
                blend_seconds: 0.0,
                total_seconds: if v > 0.0 { 1.0 / v } else { 0.0 },
                textures_per_second: v,
                bus_seconds: 0.0,
            },
        })
        .collect();
    format_table(&cells, true)
}

fn summarize_shape(cells: &[SweepCell], published: &[(usize, usize, f64)]) {
    let sim = |p: usize, g: usize| {
        cells
            .iter()
            .find(|c| c.processors == p && c.pipes == g)
            .map(|c| c.simulated_textures_per_second)
            .unwrap_or(0.0)
    };
    let base_sim = sim(1, 1).max(1e-9);
    let base_pub = published
        .iter()
        .find(|(p, g, _)| *p == 1 && *g == 1)
        .map(|(_, _, v)| *v)
        .unwrap_or(1.0);
    println!("Speedup over the (1,1) cell — published vs simulated:");
    for (p, g, v) in published {
        let s_pub = v / base_pub;
        let s_sim = sim(*p, *g) / base_sim;
        println!("  ({p}, {g}): paper {s_pub:>4.1}x   reproduction {s_sim:>4.1}x");
    }
    println!();
}

/// Figure 1: a single spot (left) and the resulting texture (right).
fn figure1(out_dir: &Path) {
    println!("=== Figure 1: single spot and resulting spot-noise texture ===");
    let domain = Rect::new(Vec2::ZERO, Vec2::new(1.0, 1.0));
    let field = flowfield::analytic::Uniform {
        velocity: Vec2::ZERO,
        domain,
    };
    // Left: one spot in the middle, isotropic (no flow deformation).
    let single_cfg = SynthesisConfig {
        texture_size: 256,
        spot_count: 1,
        spot_radius: 0.12,
        max_stretch: 1.0,
        ..SynthesisConfig::small_test()
    };
    let single = synthesize_sequential(
        &field,
        &[spotnoise::spot::Spot {
            position: domain.center(),
            intensity: 1.0,
        }],
        &single_cfg,
    );
    save_gray(
        &single.texture.normalized(),
        out_dir,
        "figure1_single_spot.ppm",
    );

    // Right: many spots of random intensity — pure (undeformed) spot noise.
    let noise_cfg = SynthesisConfig {
        texture_size: 256,
        spot_count: 10_000,
        spot_radius: 0.02,
        max_stretch: 1.0,
        ..SynthesisConfig::small_test()
    };
    let spots = generate_spots(noise_cfg.spot_count, domain, 1.0, 91);
    let noise = synthesize_sequential(&field, &spots, &noise_cfg);
    save_gray(
        &standard_postprocess(&noise.texture, noise_cfg.spot_radius_pixels()),
        out_dir,
        "figure1_texture.ppm",
    );
    println!();
}

/// Figure 2: skin friction on the block, default vs advected spot positions.
fn figure2(out_dir: &Path) {
    println!("=== Figure 2: separation on the block, default vs advected spots ===");
    let mut dns = DnsSolver::new(DnsConfig::small_test());
    for _ in 0..150 {
        dns.step(0.02);
    }
    let pattern = pattern_from_dns(&dns);
    let field = skin_friction_field(&pattern, 64, 64);
    let cfg = SynthesisConfig {
        texture_size: 384,
        spot_count: 1500,
        spot_radius: 0.02,
        spot_kind: SpotKind::Bent { rows: 12, cols: 5 },
        ..SynthesisConfig::small_test()
    };
    for (mode, label) in [
        (PositionMode::Random, "default"),
        (PositionMode::Advected, "advected"),
    ] {
        let mut pipeline = Pipeline::with_animator(
            cfg,
            ExecutionMode::Sequential,
            field.domain(),
            ParticleOptions {
                count: cfg.spot_count,
                mean_lifetime: 30,
                ..Default::default()
            },
            mode,
        );
        // Advance several frames so the advected mode accumulates coherence.
        let mut frame = pipeline.advance(&field, 0.02, 0);
        for _ in 0..8 {
            frame = pipeline.advance(&field, 0.02, 0);
        }
        save_gray(&frame.display, out_dir, &format!("figure2_{label}.ppm"));
    }
    println!(
        "attachment height measured from the DNS: {:.2} of the face\n",
        flowsim::attachment_height(&dns)
    );
}

/// Figure 6: pollutant superimposed on the wind-field spot noise, with map.
fn figure6(out_dir: &Path, quick: bool) {
    println!("=== Figure 6: smog steering — O3 over wind-field spot noise ===");
    let mut model = SmogModel::paper_resolution(1997);
    for _ in 0..40 {
        model.step(0.2);
    }
    let cfg = if quick {
        SynthesisConfig {
            texture_size: 256,
            spot_count: 800,
            spot_kind: SpotKind::Bent { rows: 12, cols: 7 },
            ..SynthesisConfig::atmospheric_paper()
        }
    } else {
        SynthesisConfig::atmospheric_paper()
    };
    let spots = generate_spots(
        cfg.spot_count,
        model.domain(),
        cfg.intensity_amplitude,
        cfg.seed,
    );
    let machine = MachineConfig::onyx2_full();
    let out = synthesize_dnc(model.wind_field(), &spots, &cfg, &machine);
    println!(
        "synthesis: simulated {:.1} textures/s, measured {:.1} textures/s",
        out.predicted.textures_per_second,
        out.measured_textures_per_second()
    );
    let display = standard_postprocess(&out.texture, cfg.spot_radius_pixels());
    let mut fb = texture_to_framebuffer(
        &display,
        cfg.texture_size,
        cfg.texture_size,
        Colormap::Grayscale,
    );
    let range = model.concentration().range();
    overlay_scalar_field(
        &mut fb,
        model.concentration(),
        range,
        Colormap::Rainbow,
        0.55,
    );
    draw_map(&mut fb, model.domain(), Rgb::new(240, 240, 240));
    let path = out_dir.join("figure6_smog.ppm");
    fb.save_ppm(&path).expect("write figure 6");
    println!("wrote {}\n", path.display());
}

/// Figure 7: spot-noise image of the turbulent wake behind the block.
fn figure7(out_dir: &Path, quick: bool) {
    println!("=== Figure 7: vortex shedding behind a block ===");
    let (solver_cfg, steps) = if quick {
        (DnsConfig::small_test(), 150)
    } else {
        (
            DnsConfig {
                nx: 139,
                ny: 104,
                ..DnsConfig::paper_resolution()
            },
            300,
        )
    };
    let mut dns = DnsSolver::new(solver_cfg);
    for _ in 0..steps {
        dns.step(0.02);
    }
    println!(
        "wake fluctuation (std of v behind the block): {:.3}",
        dns.wake_fluctuation()
    );
    let cfg = if quick {
        SynthesisConfig {
            texture_size: 256,
            spot_count: 4000,
            spot_kind: SpotKind::Bent { rows: 8, cols: 3 },
            ..SynthesisConfig::turbulence_paper()
        }
    } else {
        SynthesisConfig::turbulence_paper()
    };
    let slice = dns.rectilinear_slice();
    let spots = generate_spots(
        cfg.spot_count,
        slice.domain(),
        cfg.intensity_amplitude,
        cfg.seed,
    );
    let machine = MachineConfig::onyx2_full();
    let out = synthesize_dnc(&slice, &spots, &cfg, &machine);
    println!(
        "synthesis: simulated {:.1} textures/s, measured {:.1} textures/s",
        out.predicted.textures_per_second,
        out.measured_textures_per_second()
    );
    let display = standard_postprocess(&out.texture, cfg.spot_radius_pixels());
    let height =
        (cfg.texture_size as f64 * slice.domain().height() / slice.domain().width()) as usize;
    let mut fb = texture_to_framebuffer(
        &display,
        cfg.texture_size,
        height.max(32),
        Colormap::Grayscale,
    );
    draw_rect_outline(
        &mut fb,
        slice.domain(),
        dns.block().rect,
        Rgb::new(255, 80, 80),
    );
    let path = out_dir.join("figure7_wake.ppm");
    fb.save_ppm(&path).expect("write figure 7");
    println!("wrote {}\n", path.display());
}

/// Section 5.1 / 5.2 bandwidth observations.
fn bandwidth(quick: bool) {
    println!("=== Bandwidth observation (paper section 5.1 / 5.2) ===");
    let workload: Workload = if quick {
        atmospheric_scaled()
    } else {
        atmospheric_paper()
    };
    let machine = MachineConfig::onyx2_full();
    let out = synthesize_dnc(
        workload.field.as_ref(),
        &workload.spots,
        &workload.config,
        &machine,
    );
    let cost = machine.cost;
    let vertex_bytes = cost.vertex_bytes(out.total_pipe_work().vertices);
    let mb_per_texture = vertex_bytes as f64 / 1.0e6;
    let rate = out.predicted.textures_per_second;
    println!("vertex data per texture: {mb_per_texture:.1} MB (paper: ~21.8 MB atmospheric, ~31 MB turbulence)");
    println!(
        "at the simulated {:.1} textures/s this is {:.0} MB/s of an {:.0} MB/s bus ({:.0}% utilisation)",
        rate,
        mb_per_texture * rate,
        cost.bus_bytes_per_second / 1.0e6,
        100.0 * mb_per_texture * rate / (cost.bus_bytes_per_second / 1.0e6),
    );
    println!(
        "recorded bus traffic on the host run: {} MB vertices, {} MB textures\n",
        out.bus.vertex_bytes / 1_000_000,
        out.bus.texture_bytes / 1_000_000
    );
}

/// Stage-time breakdown of the interactive pipeline (figures 3 and 5).
fn pipeline_breakdown() {
    println!("=== Pipeline stage breakdown (figures 3 and 5) ===");
    let mut model = SmogModel::new(53, 55, 7);
    let cfg = SynthesisConfig {
        texture_size: 256,
        spot_count: 800,
        spot_kind: SpotKind::Bent { rows: 12, cols: 7 },
        ..SynthesisConfig::atmospheric_paper()
    };
    let machine = MachineConfig::onyx2_full();
    let mut pipeline = Pipeline::new(
        cfg,
        ExecutionMode::DivideAndConquer(machine),
        model.domain(),
    );
    for frame_idx in 0..3 {
        let (_, read_us) = spotnoise::metrics::timed(|| model.step(0.2));
        let frame = pipeline.advance(model.wind_field(), 0.2, read_us);
        let t = frame.metrics.timings;
        println!(
            "frame {frame_idx}: read {:>6} us | advect {:>6} us | synthesize {:>8} us | render {:>6} us  ({:.2} textures/s measured, {:.2} simulated)",
            t.read_us,
            t.advect_us,
            t.synthesize_us,
            t.render_us,
            t.textures_per_second(),
            frame.metrics.simulated_textures_per_second().unwrap_or(0.0),
        );
    }
    println!();
}

fn save_gray(texture: &softpipe::Texture, out_dir: &Path, name: &str) {
    let fb = texture_to_framebuffer(
        texture,
        texture.width(),
        texture.height(),
        Colormap::Grayscale,
    );
    let path = out_dir.join(name);
    fb.save_ppm(&path).expect("write image");
    println!("wrote {}", path.display());
}
