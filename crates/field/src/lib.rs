//! # flowfield — vector-field substrate for divide-and-conquer spot noise
//!
//! This crate provides everything the spot-noise pipeline needs to know about
//! the data it visualizes:
//!
//! * [`vec2`] — 2-D vector/matrix/rectangle arithmetic,
//! * [`grid`] — regular and rectilinear sampled grids with bilinear
//!   interpolation, plus the [`grid::VectorField`]/[`grid::ScalarField`]
//!   traits the rest of the workspace programs against,
//! * [`analytic`] — closed-form test fields (vortex, saddle, double gyre,
//!   vortex street, ...),
//! * [`integrate`] — Euler/RK2/RK4 particle integrators,
//! * [`streamline`] — arc-length stream-line tracing used by bent spots,
//! * [`particles`] — particle ensembles with life cycles (spot positions),
//! * [`stats`] — field statistics and derived grids (vorticity, divergence),
//! * [`io`] — a simple text format for storing sampled grids (the data
//!   browser's storage layer).
//!
//! The crate is deliberately free of any rendering or parallelism concerns;
//! it is the "read data set" and "advect particles" substrate of the paper's
//! pipeline (steps 1 and 2 of figure 3).

#![warn(missing_docs)]

pub mod analytic;
pub mod grid;
pub mod integrate;
pub mod io;
pub mod particles;
pub mod stats;
pub mod streamline;
pub mod vec2;

pub use grid::{RectilinearGrid, RegularGrid, ScalarField, ScalarGrid, VectorField};
pub use integrate::Integrator;
pub use particles::{Particle, ParticleEnsemble, ParticleOptions};
pub use streamline::{trace_streamline, Streamline, StreamlineOptions};
pub use vec2::{Mat2, Rect, Vec2};

#[cfg(test)]
mod proptests {
    use crate::analytic::{divergence, Vortex};
    use crate::grid::{RegularGrid, VectorField};
    use crate::integrate::Integrator;
    use crate::streamline::{trace_streamline, StreamlineOptions};
    use crate::vec2::{Rect, Vec2};
    use proptest::prelude::*;

    fn domain() -> Rect {
        Rect::new(Vec2::new(-1.0, -1.0), Vec2::new(1.0, 1.0))
    }

    proptest! {
        /// Bilinear interpolation of a grid never exceeds the range of the
        /// node values it interpolates between (convexity).
        #[test]
        fn interpolation_is_convex(x in -1.0f64..1.0, y in -1.0f64..1.0, seed in 0u64..1000) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let g = RegularGrid::from_fn(6, 6, domain(), |_| {
                Vec2::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
            });
            let v = g.interpolate(Vec2::new(x, y));
            let max_x = g.samples().iter().map(|s| s.x).fold(f64::NEG_INFINITY, f64::max);
            let min_x = g.samples().iter().map(|s| s.x).fold(f64::INFINITY, f64::min);
            prop_assert!(v.x <= max_x + 1e-12 && v.x >= min_x - 1e-12);
        }

        /// Vortex fields are divergence-free everywhere we can probe.
        #[test]
        fn vortex_divergence_free(x in -0.9f64..0.9, y in -0.9f64..0.9, omega in 0.1f64..5.0) {
            let f = Vortex { omega, center: Vec2::ZERO, domain: domain() };
            prop_assert!(divergence(&f, Vec2::new(x, y), 1e-4).abs() < 1e-5);
        }

        /// RK4 advection through a vortex conserves the orbit radius.
        #[test]
        fn rk4_conserves_radius(r in 0.1f64..0.9, theta in 0.0f64..std::f64::consts::TAU, t in 0.0f64..2.0) {
            let f = Vortex { omega: 1.0, center: Vec2::ZERO, domain: domain() };
            let start = Vec2::from_angle(theta) * r;
            let end = Integrator::RungeKutta4.advect(&f, start, t, 64);
            prop_assert!((end.norm() - r).abs() < 1e-4);
        }

        /// Stream lines never leave the field domain.
        #[test]
        fn streamlines_stay_in_domain(x in -1.0f64..1.0, y in -1.0f64..1.0, len in 0.1f64..3.0) {
            let f = Vortex { omega: 1.0, center: Vec2::ZERO, domain: domain() };
            let sl = trace_streamline(&f, Vec2::new(x, y), len, &StreamlineOptions::default());
            prop_assert!(sl.points.iter().all(|p| f.domain().expanded(1e-9).contains(*p)));
        }

        /// Resampled stream lines have exactly the requested vertex count and
        /// preserve the end points.
        #[test]
        fn resample_count(n in 2usize..64, x in -0.5f64..0.5, y in -0.5f64..0.5) {
            let f = Vortex { omega: 1.0, center: Vec2::ZERO, domain: domain() };
            let sl = trace_streamline(&f, Vec2::new(x, y), 0.5, &StreamlineOptions::default());
            let r = sl.resample(n);
            prop_assert_eq!(r.len(), n);
            if sl.points.len() >= 2 {
                prop_assert!((r[0] - sl.points[0]).norm() < 1e-9);
                prop_assert!((r[n - 1] - *sl.points.last().unwrap()).norm() < 1e-9);
            }
        }
    }
}
