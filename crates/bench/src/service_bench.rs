//! Loopback load generator for the synthesis service.
//!
//! Boots a real [`spotnoise_service`] server on an ephemeral loopback port
//! and drives it over HTTP with keep-alive clients, sweeping concurrency
//! {1, 4, 16} × {cache-cold, cache-hot}:
//!
//! * **cold** — every client owns a session with a unique seed and walks its
//!   frames sequentially, so every request misses the cache and pays one
//!   full synthesis through the admission queue;
//! * **hot** — all clients replay the frames of one pre-warmed shared
//!   session, so every request is served straight from the LRU frame cache.
//!
//! A **fan-out** phase then measures the shared-field broadcast layer:
//! many subscribers of a handful of shared fields stream frames over
//! chunked HTTP while the server synthesizes each field exactly once —
//! delivered/synthesized is the broadcast leverage and must stay O(fields).
//!
//! A final overload phase floods a deliberately tiny server (one worker,
//! watermark 3) far past its watermark and records how many requests were
//! shed with `Busy` versus queued — the queue must shed, not grow. Before
//! the burst, a sustained sub-phase holds the queue at its watermark until
//! the pressure ladder engages, and banks the stale/degraded/deadline-shed
//! counters it produced: graceful degradation must precede outright
//! refusal. Results feed `BENCH_service.json` (schema `bench_service/v1`).

use crate::json::Json;
use spotnoise::telemetry::Histogram;
use spotnoise_service::{serve, AdmissionConfig, ServiceClient, ServiceOptions};
use std::net::SocketAddr;
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// Workload knobs of one bench run.
#[derive(Debug, Clone, Copy)]
pub struct ServiceBenchOptions {
    /// Texture side length of the bench sessions.
    pub texture_size: usize,
    /// Spots per frame of the bench sessions.
    pub spot_count: usize,
    /// Frame requests each client issues per case.
    pub requests_per_client: usize,
    /// Concurrency levels to sweep.
    pub concurrency: [usize; 3],
    /// Distinct shared fields of the fan-out phase.
    pub fanout_fields: usize,
    /// Total streaming subscribers of the fan-out phase, spread evenly
    /// over the fields.
    pub fanout_subscribers: usize,
    /// Frames each fan-out subscriber streams.
    pub fanout_frames: u64,
    /// Synthesis worker threads per server (0 = one per available core);
    /// set by the `--threads` sweep so the service side scales with the
    /// rayon worker override.
    pub workers: usize,
}

impl ServiceBenchOptions {
    /// The default measurement run.
    pub fn standard() -> Self {
        ServiceBenchOptions {
            texture_size: 128,
            spot_count: 800,
            requests_per_client: 24,
            concurrency: [1, 4, 16],
            fanout_fields: 4,
            fanout_subscribers: 64,
            fanout_frames: 24,
            workers: 0,
        }
    }

    /// A reduced run for CI smoke (`--quick`).
    pub fn quick() -> Self {
        ServiceBenchOptions {
            texture_size: 64,
            spot_count: 200,
            requests_per_client: 8,
            concurrency: [1, 4, 16],
            fanout_fields: 2,
            fanout_subscribers: 16,
            fanout_frames: 8,
            workers: 0,
        }
    }

    fn session_body(&self, seed: u64) -> String {
        format!(
            concat!(
                "{{\"field\": {{\"kind\": \"vortex\", \"omega\": 1.0}}, ",
                "\"config\": {{\"texture_size\": {}, \"spot_count\": {}, ",
                "\"spot_texture_size\": 16, \"seed\": {}}}}}"
            ),
            self.texture_size, self.spot_count, seed
        )
    }

    /// A shared-session spec: same workload, subscribed to the broadcast
    /// channel of its `(field, config, seed)` instead of owning a pipeline.
    fn shared_session_body(&self, seed: u64) -> String {
        let body = self.session_body(seed);
        format!("{}, \"shared\": true}}", &body[..body.len() - 1])
    }
}

/// One measured (concurrency, cache mode) case.
#[derive(Debug, Clone)]
pub struct ServiceCase {
    /// Case identifier, e.g. `cold_c16`.
    pub name: String,
    /// `"cold"` or `"hot"`.
    pub mode: &'static str,
    /// Concurrent clients.
    pub concurrency: usize,
    /// Total requests completed.
    pub requests: usize,
    /// Median request latency in microseconds.
    pub p50_us: f64,
    /// 90th-percentile request latency in microseconds.
    pub p90_us: f64,
    /// 99th-percentile request latency in microseconds.
    pub p99_us: f64,
    /// Mean request latency in microseconds.
    pub mean_us: f64,
    /// Aggregate served frames per second over the case's wall time.
    pub frames_per_second: f64,
    /// Fraction of requests served from the frame cache.
    pub cache_hit_rate: f64,
    /// Requests shed with `503 Busy` (retried until served).
    pub busy_retries: u64,
}

/// Outcome of the shared-field fan-out phase.
#[derive(Debug, Clone, Copy)]
pub struct FanoutResult {
    /// Distinct shared fields (= broadcast channels).
    pub fields: usize,
    /// Streaming subscribers across all fields.
    pub subscribers: usize,
    /// Frames each subscriber streamed.
    pub frames_per_subscriber: u64,
    /// Frames received client-side across all subscribers.
    pub delivered: u64,
    /// Frontier skips observed client-side (fallen-behind subscribers).
    pub skipped: u64,
    /// Frames the server actually synthesized (`/stats` channels counter).
    pub synthesized: u64,
    /// delivered / synthesized as the server accounts it — the broadcast
    /// leverage; O(fields) synthesis makes this scale with subscribers.
    pub delivery_ratio: f64,
    /// Median steady-state inter-frame gap of a subscriber's stream, in
    /// microseconds (the first frame of each stream — which pays the
    /// initial synthesis — is excluded).
    pub p50_us: f64,
    /// 90th-percentile steady-state inter-frame gap in microseconds.
    pub p90_us: f64,
    /// 99th-percentile steady-state inter-frame gap in microseconds.
    pub p99_us: f64,
    /// Aggregate delivered frames per second over the phase's wall time.
    pub frames_per_second: f64,
}

/// Outcome of the overload phase.
#[derive(Debug, Clone, Copy)]
pub struct OverloadResult {
    /// The tiny server's queue watermark.
    pub watermark: usize,
    /// Concurrent one-shot requests fired at it.
    pub submitted: usize,
    /// Requests shed with `503 Busy`.
    pub busy: usize,
    /// Requests that rendered successfully.
    pub completed: usize,
    /// Highest queue depth the server ever recorded.
    pub peak_depth: usize,
    /// Times the pressure gauge entered its saturated rung during the
    /// sustained sub-phase — proof the ladder engaged before the burst.
    pub entered_saturated: u64,
    /// Cached-frontier serves handed to shared subscribers (`X-Frame-Stale`)
    /// before the shed burst was fired.
    pub stale_serves: u64,
    /// Frames served from sampling-degraded sessions (`X-Frame-Degraded`)
    /// before the shed burst was fired.
    pub degraded_serves: u64,
    /// Requests shed because their deadline budget was already spent.
    pub deadline_shed: u64,
}

/// The full report.
#[derive(Debug, Clone)]
pub struct ServiceBenchReport {
    /// Host threads available to the server.
    pub threads: usize,
    /// SIMD dispatch level the synthesis kernels executed at
    /// ([`softpipe::simd::active`]).
    pub simd: String,
    /// Raw `SPOTNOISE_SIMD` override the process was started with, if any.
    pub simd_override: Option<String>,
    /// The workload knobs used.
    pub options: ServiceBenchOptions,
    /// Bytes of one frame on the wire.
    pub frame_bytes: usize,
    /// The sweep cases.
    pub cases: Vec<ServiceCase>,
    /// The shared-field fan-out phase outcome.
    pub fanout: FanoutResult,
    /// The overload phase outcome.
    pub overload: OverloadResult,
}

struct ClientOutcome {
    hits: u64,
    busy_retries: u64,
}

/// One client's request loop: fetch `frames` in order on `session`,
/// retrying shed requests until served. Latencies go straight into the
/// case's shared lock-free [`Histogram`] — the same structure the server's
/// `/metrics` percentiles come from, recorded concurrently from every
/// client thread with no aggregation pass afterwards.
fn run_client(
    addr: SocketAddr,
    session: String,
    frames: Vec<u64>,
    barrier: Arc<Barrier>,
    latencies: Arc<Histogram>,
) -> ClientOutcome {
    let mut client = ServiceClient::connect(addr).expect("connect bench client");
    let mut outcome = ClientOutcome {
        hits: 0,
        busy_retries: 0,
    };
    barrier.wait();
    for frame in frames {
        let start = Instant::now();
        loop {
            match client.fetch_frame(&session, frame) {
                Ok(fetched) => {
                    latencies.record_duration(start.elapsed());
                    if fetched.cache_hit {
                        outcome.hits += 1;
                    }
                    break;
                }
                Err(spotnoise_service::ClientError::Busy { .. }) => {
                    outcome.busy_retries += 1;
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                Err(e) => panic!("bench client failed on frame {frame}: {e}"),
            }
        }
    }
    outcome
}

/// Runs one (concurrency, mode) case against the shared server.
fn run_case(
    addr: SocketAddr,
    opts: &ServiceBenchOptions,
    concurrency: usize,
    mode: &'static str,
    seed_base: u64,
) -> ServiceCase {
    let requests = opts.requests_per_client;
    // Session setup happens before the clock starts.
    let sessions: Vec<String> = if mode == "hot" {
        // One shared session, pre-warmed so every measured request hits.
        let mut warmup = ServiceClient::connect(addr).expect("connect warmup client");
        let session = warmup
            .create_session(&opts.session_body(seed_base))
            .expect("create hot session");
        for frame in 0..requests as u64 {
            warmup
                .fetch_frame(&session, frame)
                .expect("warm up hot session");
        }
        vec![session; concurrency]
    } else {
        (0..concurrency)
            .map(|i| {
                let mut c = ServiceClient::connect(addr).expect("connect setup client");
                c.create_session(&opts.session_body(seed_base + 1 + i as u64))
                    .expect("create cold session")
            })
            .collect()
    };

    let barrier = Arc::new(Barrier::new(concurrency + 1));
    let latencies = Arc::new(Histogram::new());
    let workers: Vec<_> = sessions
        .iter()
        .map(|session| {
            let barrier = Arc::clone(&barrier);
            let session = session.clone();
            let latencies = Arc::clone(&latencies);
            let frames: Vec<u64> = (0..requests as u64).collect();
            std::thread::spawn(move || run_client(addr, session, frames, barrier, latencies))
        })
        .collect();
    barrier.wait();
    let started = Instant::now();
    let outcomes: Vec<ClientOutcome> = workers
        .into_iter()
        .map(|w| w.join().expect("bench client panicked"))
        .collect();
    let wall = started.elapsed().as_secs_f64();

    let snap = latencies.snapshot();
    let total = snap.count as usize;
    let hits: u64 = outcomes.iter().map(|o| o.hits).sum();
    let busy_retries: u64 = outcomes.iter().map(|o| o.busy_retries).sum();
    ServiceCase {
        name: format!("{mode}_c{concurrency}"),
        mode,
        concurrency,
        requests: total,
        p50_us: snap.percentile(50.0) as f64,
        p90_us: snap.percentile(90.0) as f64,
        p99_us: snap.percentile(99.0) as f64,
        mean_us: snap.mean(),
        frames_per_second: if wall > 0.0 { total as f64 / wall } else { 0.0 },
        cache_hit_rate: if total > 0 {
            hits as f64 / total as f64
        } else {
            0.0
        },
        busy_retries,
    }
}

/// One fan-out subscriber: create a shared session for `seed` and stream
/// `frames` frames, recording steady-state inter-frame gaps into the
/// phase's shared histogram.
struct SubscriberOutcome {
    delivered: u64,
    skipped: u64,
}

fn run_subscriber(
    addr: SocketAddr,
    body: String,
    frames: u64,
    barrier: Arc<Barrier>,
    gaps: Arc<Histogram>,
) -> SubscriberOutcome {
    let mut client = ServiceClient::connect(addr).expect("connect fanout subscriber");
    let session = client.create_session(&body).expect("create shared session");
    let mut outcome = SubscriberOutcome {
        delivered: 0,
        skipped: 0,
    };
    barrier.wait();
    let mut stream = client
        .stream_frames(&session, 0, frames)
        .expect("open fanout stream");
    let mut last = Instant::now();
    while let Some(frame) = stream.next_frame().expect("fanout stream read") {
        let now = Instant::now();
        // The first frame pays the stream's initial synthesis (or cache
        // warm-up); everything after it is the steady-state fan-out path.
        if outcome.delivered > 0 {
            gaps.record_duration(now - last);
        }
        last = now;
        outcome.delivered += 1;
        if frame.skipped {
            outcome.skipped += 1;
        }
    }
    outcome
}

/// Runs the shared-field fan-out phase on a fresh server: `fields` distinct
/// shared specs, `subscribers` streaming clients spread evenly over them.
/// Synthesis must stay O(fields) while delivery scales with subscribers.
fn run_fanout(opts: &ServiceBenchOptions) -> FanoutResult {
    let fields = opts.fanout_fields.max(1);
    let subscribers = opts.fanout_subscribers.max(fields);
    let frames = opts.fanout_frames.max(1);
    let handle = serve(
        "127.0.0.1:0",
        ServiceOptions {
            cache_bytes: 256 << 20,
            workers: opts.workers,
            max_sessions: subscribers + 8,
            max_stream_frames: frames,
            ..ServiceOptions::default()
        },
    )
    .expect("bind fanout server");
    let addr = handle.addr();
    let barrier = Arc::new(Barrier::new(subscribers + 1));
    let gaps = Arc::new(Histogram::new());
    let workers: Vec<_> = (0..subscribers)
        .map(|i| {
            // Subscriber i watches field (i % fields): distinct seeds make
            // distinct broadcast channels, same-seed subscribers share one.
            let body = opts.shared_session_body(7_000 + (i % fields) as u64);
            let barrier = Arc::clone(&barrier);
            let gaps = Arc::clone(&gaps);
            std::thread::spawn(move || run_subscriber(addr, body, frames, barrier, gaps))
        })
        .collect();
    barrier.wait();
    let started = Instant::now();
    let outcomes: Vec<SubscriberOutcome> = workers
        .into_iter()
        .map(|w| w.join().expect("fanout subscriber panicked"))
        .collect();
    let wall = started.elapsed().as_secs_f64();

    let mut stats_client = ServiceClient::connect(addr).expect("connect fanout stats");
    let stats = stats_client.stats().expect("fanout stats");
    let channel_stat = |key: &str| {
        stats
            .get("channels")
            .and_then(|c| c.get(key))
            .and_then(Json::as_f64)
            .unwrap_or(f64::NAN)
    };
    let synthesized = channel_stat("synthesized") as u64;
    let stats_delivered = channel_stat("delivered");
    handle.shutdown();

    let delivered: u64 = outcomes.iter().map(|o| o.delivered).sum();
    let skipped: u64 = outcomes.iter().map(|o| o.skipped).sum();
    let gap_snap = gaps.snapshot();
    FanoutResult {
        fields,
        subscribers,
        frames_per_subscriber: frames,
        delivered,
        skipped,
        synthesized,
        delivery_ratio: if synthesized > 0 {
            stats_delivered / synthesized as f64
        } else {
            0.0
        },
        p50_us: gap_snap.percentile(50.0) as f64,
        p90_us: gap_snap.percentile(90.0) as f64,
        p99_us: gap_snap.percentile(99.0) as f64,
        frames_per_second: if wall > 0.0 {
            delivered as f64 / wall
        } else {
            0.0
        },
    }
}

/// Floods a one-worker, watermark-3 server with simultaneous cold requests
/// and records shed-vs-served counts. The queue must shed with `Busy`, never
/// grow past its watermark.
/// Reads one numeric pressure counter out of a `/stats` document.
fn pressure_counter(stats: &Json, key: &str) -> u64 {
    stats
        .get("pressure")
        .and_then(|p| p.get(key))
        .and_then(Json::as_f64)
        .unwrap_or(0.0) as u64
}

fn run_overload(opts: &ServiceBenchOptions) -> OverloadResult {
    let watermark = 3;
    let submitted = 12;
    let server_options = ServiceOptions {
        workers: 1,
        cache_bytes: 0, // force every request through synthesis
        admission: AdmissionConfig {
            watermark,
            per_session: 2,
        },
        ..ServiceOptions::default()
    };
    let handle = serve("127.0.0.1:0", server_options).expect("bind overload server");
    let addr = handle.addr();
    // Heavier frames than the sweep, so the flood overlaps the worker.
    let body = format!(
        "{{\"config\": {{\"texture_size\": 192, \"spot_count\": {}, \"seed\": 9}}}}",
        opts.spot_count.max(1500)
    );

    // Sub-phase 1 — sustained saturation. Before the shed burst, hold the
    // one-worker queue at its watermark long enough for the pressure gauge
    // to reach `saturated`, and show the ladder answers with degraded
    // content before the server ever refuses outright: exact sessions flip
    // to footprint sampling (degraded serves) and a shared subscriber gets
    // the cached frontier (stale serves).
    let shared_body = format!("{}, \"shared\": true}}", &body[..body.len() - 1]);
    let mut shared_client = ServiceClient::connect(addr).expect("connect shared client");
    let shared = shared_client
        .create_session(&shared_body)
        .expect("create shared overload session");
    // Warm the channel frontier so a stale serve has something to hand out.
    loop {
        match shared_client.fetch_frame(&shared, 0) {
            Ok(_) => break,
            Err(spotnoise_service::ClientError::Busy { .. }) => {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            Err(e) => panic!("overload frontier warm-up failed: {e}"),
        }
    }
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let pressers: Vec<_> = (0..3)
        .map(|i| {
            let stop = Arc::clone(&stop);
            let body = body.replace("\"seed\": 9", &format!("\"seed\": {}", 500 + i));
            std::thread::spawn(move || {
                let mut client = ServiceClient::connect(addr).expect("connect presser");
                let session = client
                    .create_session(&body)
                    .expect("create presser session");
                let mut frame = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    match client.fetch_frame(&session, frame) {
                        Ok(_) => frame += 1,
                        Err(spotnoise_service::ClientError::Busy { .. }) => {
                            std::thread::sleep(std::time::Duration::from_millis(10));
                        }
                        Err(e) => panic!("presser failed: {e}"),
                    }
                }
            })
        })
        .collect();
    // Probe the shared session past the frontier until the ladder serves a
    // stale frontier frame and at least one degraded presser frame landed;
    // bail out after a bounded wait so a broken ladder fails the --check
    // gate instead of hanging the bench.
    let mut stats_client = ServiceClient::connect(addr).expect("connect stats client");
    let ladder_deadline = Instant::now() + std::time::Duration::from_secs(15);
    let mut probe_frame = 1u64;
    loop {
        match shared_client.fetch_frame(&shared, probe_frame) {
            Ok(fetched) if !fetched.stale => probe_frame = fetched.frame + 1,
            Ok(_) => {}
            Err(spotnoise_service::ClientError::Busy { .. }) => {}
            Err(e) => panic!("shared probe failed: {e}"),
        }
        let stats = stats_client.stats().expect("mid-overload stats");
        if (pressure_counter(&stats, "stale_serves") >= 1
            && pressure_counter(&stats, "degraded_serves") >= 1)
            || Instant::now() >= ladder_deadline
        {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for p in pressers {
        p.join().expect("presser panicked");
    }
    // Ladder counters are snapshotted *before* the burst: whatever they
    // read here happened strictly before any burst shed below.
    let ladder = stats_client.stats().expect("pre-burst stats");
    let entered_saturated = pressure_counter(&ladder, "entered_saturated");
    let stale_serves = pressure_counter(&ladder, "stale_serves");
    let degraded_serves = pressure_counter(&ladder, "degraded_serves");
    let deadline_shed = pressure_counter(&ladder, "deadline_shed");

    // Sub-phase 2 — the shed burst: 12 simultaneous one-shot requests on
    // fresh sessions against the watermark-3 queue.
    let sessions: Vec<String> = (0..submitted)
        .map(|i| {
            let mut c = ServiceClient::connect(addr).expect("connect overload setup");
            c.create_session(&body.replace("\"seed\": 9", &format!("\"seed\": {}", 100 + i)))
                .expect("create overload session")
        })
        .collect();
    let barrier = Arc::new(Barrier::new(submitted + 1));
    let workers: Vec<_> = sessions
        .into_iter()
        .map(|session| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = ServiceClient::connect(addr).expect("connect overload client");
                barrier.wait();
                match client.fetch_frame(&session, 0) {
                    Ok(_) => Ok(()),
                    Err(spotnoise_service::ClientError::Busy { .. }) => Err(()),
                    Err(e) => panic!("overload client failed: {e}"),
                }
            })
        })
        .collect();
    barrier.wait();
    let mut busy = 0;
    let mut completed = 0;
    for w in workers {
        match w.join().expect("overload client panicked") {
            Ok(()) => completed += 1,
            Err(()) => busy += 1,
        }
    }
    let stats = stats_client.stats().expect("overload stats");
    let peak_depth = stats
        .get("queue")
        .and_then(|q| q.get("peak_depth"))
        .and_then(Json::as_f64)
        .unwrap_or(f64::NAN) as usize;
    handle.shutdown();
    OverloadResult {
        watermark,
        submitted,
        busy,
        completed,
        peak_depth,
        entered_saturated,
        stale_serves,
        degraded_serves,
        deadline_shed,
    }
}

/// Runs the full sweep, the fan-out phase and the overload phase.
pub fn run_service_bench(opts: ServiceBenchOptions) -> ServiceBenchReport {
    let server_options = ServiceOptions {
        cache_bytes: 64 << 20,
        workers: opts.workers,
        ..ServiceOptions::default()
    };
    let handle = serve("127.0.0.1:0", server_options).expect("bind bench server");
    let addr = handle.addr();
    let mut cases = Vec::new();
    let mut seed_base = 1_000;
    for &concurrency in &opts.concurrency {
        for mode in ["cold", "hot"] {
            cases.push(run_case(addr, &opts, concurrency, mode, seed_base));
            // Seeds never repeat across cases, so "cold" stays cold.
            seed_base += 1_000;
        }
    }
    handle.shutdown();
    let fanout = run_fanout(&opts);
    let overload = run_overload(&opts);
    ServiceBenchReport {
        threads: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        simd: softpipe::simd::active().name().to_string(),
        simd_override: softpipe::simd::env_override().map(str::to_string),
        options: opts,
        frame_bytes: opts.texture_size * opts.texture_size * 4,
        cases,
        fanout,
        overload,
    }
}

/// Human-readable table for stdout.
pub fn format_report(report: &ServiceBenchReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "service loopback bench ({} threads, {}x{} texture, {} spots, {} req/client)\n",
        report.threads,
        report.options.texture_size,
        report.options.texture_size,
        report.options.spot_count,
        report.options.requests_per_client,
    ));
    out.push_str(&format!(
        "{:<10} {:>5} {:>9} {:>12} {:>12} {:>12} {:>12} {:>10} {:>6}\n",
        "case", "conc", "requests", "p50", "p90", "p99", "frames/s", "hit rate", "busy"
    ));
    for case in &report.cases {
        out.push_str(&format!(
            "{:<10} {:>5} {:>9} {:>9.1} us {:>9.1} us {:>9.1} us {:>12.1} {:>9.0}% {:>6}\n",
            case.name,
            case.concurrency,
            case.requests,
            case.p50_us,
            case.p90_us,
            case.p99_us,
            case.frames_per_second,
            case.cache_hit_rate * 100.0,
            case.busy_retries,
        ));
    }
    let f = &report.fanout;
    out.push_str(&format!(
        "fanout: {} subscribers x {} frames on {} shared fields: {} delivered \
         ({} skips), {} synthesized ({:.1}x leverage), gap p50 {:.1} us, {:.1} frames/s\n",
        f.subscribers,
        f.frames_per_subscriber,
        f.fields,
        f.delivered,
        f.skipped,
        f.synthesized,
        f.delivery_ratio,
        f.p50_us,
        f.frames_per_second,
    ));
    let o = &report.overload;
    out.push_str(&format!(
        "overload: {} simultaneous requests vs watermark {}: {} busy, {} served, peak depth {}\n",
        o.submitted, o.watermark, o.busy, o.completed, o.peak_depth,
    ));
    out.push_str(&format!(
        "ladder (pre-burst): saturated x{}, {} stale serves, {} degraded serves, {} deadline shed\n",
        o.entered_saturated, o.stale_serves, o.degraded_serves, o.deadline_shed,
    ));
    out
}

/// Serializes the report in the `BENCH_service.json` schema.
pub fn report_to_json(report: &ServiceBenchReport) -> String {
    report_json_value(report).to_string_pretty()
}

/// Serializes a `--threads` sweep: one `bench_service/v1` report per swept
/// worker count, wrapped in a `bench_service_sweep/v1` envelope so the
/// sweep artifact can never be mistaken for a single-run bank.
pub fn sweep_to_json(reports: &[ServiceBenchReport]) -> String {
    Json::object([
        ("schema", Json::str("bench_service_sweep/v1")),
        ("runs", Json::array(reports.iter().map(report_json_value))),
    ])
    .to_string_pretty()
}

/// Builds the JSON value for one report: the body of the single-run
/// artifact and each entry of a `--threads` sweep's `runs` array.
fn report_json_value(report: &ServiceBenchReport) -> Json {
    let f = &report.fanout;
    let o = &report.overload;
    let mut pairs: Vec<(&'static str, Json)> = vec![
        ("schema", Json::str("bench_service/v1")),
        ("threads", Json::num(report.threads as f64)),
        ("simd", Json::str(report.simd.clone())),
    ];
    if let Some(forced) = &report.simd_override {
        pairs.push(("simd_override", Json::str(forced.clone())));
    }
    pairs.extend([
        (
            "workload",
            Json::object([
                (
                    "texture_size",
                    Json::num(report.options.texture_size as f64),
                ),
                ("spot_count", Json::num(report.options.spot_count as f64)),
                (
                    "requests_per_client",
                    Json::num(report.options.requests_per_client as f64),
                ),
                ("frame_bytes", Json::num(report.frame_bytes as f64)),
                ("workers", Json::num(report.options.workers as f64)),
            ]),
        ),
        (
            "cases",
            Json::array(report.cases.iter().map(|c| {
                Json::object([
                    ("name", Json::str(c.name.clone())),
                    ("mode", Json::str(c.mode)),
                    ("concurrency", Json::num(c.concurrency as f64)),
                    ("requests", Json::num(c.requests as f64)),
                    ("p50_us", Json::num(c.p50_us)),
                    ("p90_us", Json::num(c.p90_us)),
                    ("p99_us", Json::num(c.p99_us)),
                    ("mean_us", Json::num(c.mean_us)),
                    ("frames_per_second", Json::num(c.frames_per_second)),
                    ("cache_hit_rate", Json::num(c.cache_hit_rate)),
                    ("busy_retries", Json::num(c.busy_retries as f64)),
                ])
            })),
        ),
        (
            "fanout",
            Json::object([
                ("fields", Json::num(f.fields as f64)),
                ("subscribers", Json::num(f.subscribers as f64)),
                (
                    "frames_per_subscriber",
                    Json::num(f.frames_per_subscriber as f64),
                ),
                ("delivered", Json::num(f.delivered as f64)),
                ("skipped", Json::num(f.skipped as f64)),
                ("synthesized", Json::num(f.synthesized as f64)),
                ("delivery_ratio", Json::num(f.delivery_ratio)),
                ("p50_us", Json::num(f.p50_us)),
                ("p90_us", Json::num(f.p90_us)),
                ("p99_us", Json::num(f.p99_us)),
                ("frames_per_second", Json::num(f.frames_per_second)),
            ]),
        ),
        (
            "overload",
            Json::object([
                ("watermark", Json::num(o.watermark as f64)),
                ("submitted", Json::num(o.submitted as f64)),
                ("busy", Json::num(o.busy as f64)),
                ("completed", Json::num(o.completed as f64)),
                ("peak_depth", Json::num(o.peak_depth as f64)),
                ("entered_saturated", Json::num(o.entered_saturated as f64)),
                ("stale_serves", Json::num(o.stale_serves as f64)),
                ("degraded_serves", Json::num(o.degraded_serves as f64)),
                ("deadline_shed", Json::num(o.deadline_shed as f64)),
            ]),
        ),
    ]);
    Json::object(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Nearest-rank percentile of an unsorted sample — the sorted-Vec
    /// oracle the histogram percentiles replaced.
    fn percentile_us(latencies: &mut [f64], q: f64) -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let rank = ((q / 100.0) * latencies.len() as f64).ceil() as usize;
        latencies[rank.clamp(1, latencies.len()) - 1]
    }

    #[test]
    fn percentile_oracle_nearest_rank() {
        let mut l = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile_us(&mut l, 50.0), 3.0);
        assert_eq!(percentile_us(&mut l, 99.0), 5.0);
        assert_eq!(percentile_us(&mut l, 100.0), 5.0);
        assert_eq!(percentile_us(&mut [][..].to_vec(), 50.0), 0.0);
        let mut one = vec![7.0];
        assert_eq!(percentile_us(&mut one, 50.0), 7.0);
    }

    #[test]
    fn histogram_percentiles_track_the_sorted_vec_oracle() {
        // A spread resembling a latency distribution: dense low values,
        // sparse tail. The log-bucketed histogram must land within one
        // bucket (~2 * 2^-5 relative width) of the exact nearest-rank
        // answer at every headline quantile.
        let samples: Vec<u64> = (0..500)
            .map(|i: u64| 40 + i * 7 + (i % 13) * 1000)
            .collect();
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let snap = h.snapshot();
        let mut oracle_input: Vec<f64> = samples.iter().map(|&v| v as f64).collect();
        for q in [50.0, 90.0, 99.0] {
            let exact = percentile_us(&mut oracle_input, q);
            let approx = snap.percentile(q) as f64;
            assert!(
                (approx - exact).abs() <= exact * 0.08 + 1.0,
                "p{q}: histogram {approx} vs oracle {exact}"
            );
        }
    }

    #[test]
    fn report_json_has_schema_cases_and_overload() {
        let report = ServiceBenchReport {
            threads: 1,
            simd: "sse2".to_string(),
            simd_override: None,
            options: ServiceBenchOptions::quick(),
            frame_bytes: 64 * 64 * 4,
            cases: vec![ServiceCase {
                name: "cold_c1".to_string(),
                mode: "cold",
                concurrency: 1,
                requests: 8,
                p50_us: 1000.0,
                p90_us: 1500.0,
                p99_us: 2000.0,
                mean_us: 1100.0,
                frames_per_second: 900.0,
                cache_hit_rate: 0.0,
                busy_retries: 0,
            }],
            fanout: FanoutResult {
                fields: 2,
                subscribers: 16,
                frames_per_subscriber: 8,
                delivered: 128,
                skipped: 0,
                synthesized: 20,
                delivery_ratio: 6.4,
                p50_us: 150.0,
                p90_us: 500.0,
                p99_us: 900.0,
                frames_per_second: 5000.0,
            },
            overload: OverloadResult {
                watermark: 3,
                submitted: 12,
                busy: 8,
                completed: 4,
                peak_depth: 3,
                entered_saturated: 1,
                stale_serves: 2,
                degraded_serves: 5,
                deadline_shed: 0,
            },
        };
        let text = report_to_json(&report);
        let doc = Json::parse(&text).expect("report parses");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("bench_service/v1")
        );
        assert_eq!(doc.get("cases").and_then(Json::as_array).unwrap().len(), 1);
        assert_eq!(doc.get("simd").and_then(Json::as_str), Some("sse2"));
        // No SPOTNOISE_SIMD override ran, so the key is absent.
        assert!(doc.get("simd_override").is_none());
        assert_eq!(
            doc.get("fanout")
                .and_then(|f| f.get("delivery_ratio"))
                .and_then(Json::as_f64),
            Some(6.4)
        );
        assert_eq!(
            doc.get("overload")
                .and_then(|o| o.get("busy"))
                .and_then(Json::as_f64),
            Some(8.0)
        );
        // A sweep wraps one report per run in its own envelope.
        let sweep = sweep_to_json(&[report.clone(), report]);
        let sweep_doc = Json::parse(&sweep).expect("sweep parses");
        assert_eq!(
            sweep_doc.get("schema").and_then(Json::as_str),
            Some("bench_service_sweep/v1")
        );
        assert_eq!(
            sweep_doc
                .get("runs")
                .and_then(Json::as_array)
                .unwrap()
                .len(),
            2
        );
    }
}
