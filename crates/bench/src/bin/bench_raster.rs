//! Rasterizer before/after benchmark: times the naive per-pixel reference
//! path against the span-walking fast path on representative spot workloads
//! (plus the spot-batch-size sweep of the full divide-and-conquer synthesis)
//! and writes the results to `BENCH_raster.json`.
//!
//! ```text
//! cargo run --release -p spotnoise-bench --bin bench_raster -- \
//!     [--out BENCH_raster.json] [--check] [--filter <substring>]
//! ```
//!
//! `--check` re-reads the written artifact, parses it and asserts the
//! schema plus `speedup > 0` for every case — the CI smoke step. A failed
//! check exits non-zero. `--filter` measures only the cases whose name
//! contains one of the comma-separated substrings (excluded cases are
//! skipped entirely, not just omitted from the output), which is how CI
//! keeps the smoke run clear of the slow full-synthesis `dnc_spot_batch_*`
//! cases while still covering quads, meshes and the gather.

use spotnoise_bench::json::Json;
use std::path::PathBuf;
use std::process::ExitCode;

/// Validates the written artifact: it must parse, carry the expected
/// schema, and every case must report a positive speedup.
fn check_artifact(path: &PathBuf) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path:?}: {e}"))?;
    let doc = Json::parse(&text)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing schema field")?;
    if schema != "bench_raster/v1" {
        return Err(format!("unexpected schema {schema:?}"));
    }
    let threads = doc
        .get("threads")
        .and_then(Json::as_f64)
        .ok_or("missing threads field")?;
    if threads < 1.0 {
        return Err(format!("implausible thread count {threads}"));
    }
    let cases = doc
        .get("cases")
        .and_then(Json::as_array)
        .ok_or("missing cases array")?;
    if cases.is_empty() {
        return Err("no benchmark cases recorded".to_string());
    }
    for case in cases {
        let name = case
            .get("name")
            .and_then(Json::as_str)
            .ok_or("case without a name")?;
        let speedup = case
            .get("speedup")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("case {name}: missing speedup"))?;
        if speedup.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(format!("case {name}: speedup {speedup} is not positive"));
        }
    }
    Ok(cases.len())
}

fn main() -> ExitCode {
    let mut out = PathBuf::from("BENCH_raster.json");
    let mut check = false;
    let mut filter: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                if let Some(path) = args.next() {
                    out = PathBuf::from(path);
                }
            }
            "--check" => check = true,
            "--filter" => match args.next() {
                Some(substring) => filter = Some(substring),
                None => {
                    eprintln!("--filter needs a substring");
                    return ExitCode::FAILURE;
                }
            },
            other => eprintln!("unknown argument: {other}"),
        }
    }
    // Fail on an unwritable destination before spending minutes measuring.
    if let Some(parent) = out.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).expect("cannot create output directory");
    }
    if let Some(f) = &filter {
        println!("measuring only cases containing {f:?}");
    }
    let report = spotnoise_bench::raster_bench::run_raster_bench_filtered(filter.as_deref());
    if report.cases.is_empty() {
        eprintln!("filter matched no benchmark case");
        return ExitCode::FAILURE;
    }
    println!("{}", spotnoise_bench::raster_bench::format_report(&report));
    std::fs::write(&out, spotnoise_bench::raster_bench::report_to_json(&report))
        .expect("write BENCH_raster.json");
    println!("wrote {}", out.display());
    if check {
        match check_artifact(&out) {
            Ok(cases) => {
                println!("check OK: {cases} cases, schema valid, every speedup > 0");
            }
            Err(e) => {
                eprintln!("check FAILED: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
