//! JSON helpers for the benchmark artifacts.
//!
//! The value builder/parser itself lives in [`spotnoise::json`] (the
//! synthesis service reuses it for its `/stats` endpoint and request
//! bodies); this module re-exports it under the historical path and keeps
//! the bench-specific serializers.

pub use spotnoise::json::Json;

/// Serializes a table sweep the way `reproduce` stores `tableN.json`.
pub fn sweep_cells_to_json(cells: &[crate::SweepCell]) -> String {
    Json::array(cells.iter().map(|c| {
        Json::object([
            ("processors", Json::num(c.processors as f64)),
            ("pipes", Json::num(c.pipes as f64)),
            (
                "simulated_textures_per_second",
                Json::num(c.simulated_textures_per_second),
            ),
            (
                "measured_textures_per_second",
                Json::num(c.measured_textures_per_second),
            ),
            (
                "prediction",
                Json::object([
                    (
                        "group_seconds",
                        Json::array(c.prediction.group_seconds.iter().map(|&s| Json::num(s))),
                    ),
                    ("blend_seconds", Json::num(c.prediction.blend_seconds)),
                    ("total_seconds", Json::num(c.prediction.total_seconds)),
                    (
                        "textures_per_second",
                        Json::num(c.prediction.textures_per_second),
                    ),
                    ("bus_seconds", Json::num(c.prediction.bus_seconds)),
                ]),
            ),
        ])
    }))
    .to_string_pretty()
}
