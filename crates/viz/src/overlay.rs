//! Superimposing additional visualizations on the spot-noise image.
//!
//! Figure 6 of the paper shows the pollutant concentration colormapped and
//! superimposed on the wind-field spot noise, together with a map of Europe.
//! The overlay functions here blend a colormapped scalar field over a base
//! framebuffer with concentration-dependent opacity, and draw polylines
//! (map outlines, block outlines) on top.

use crate::colormap::Colormap;
use flowfield::{Rect, ScalarField, Vec2};
use softpipe::{Framebuffer, Rgb};

/// Blends a colormapped scalar field over `base`. The opacity at each pixel
/// is `alpha * t` where `t` is the normalised field value, so regions with no
/// pollutant stay transparent and the underlying texture remains visible.
pub fn overlay_scalar_field(
    base: &mut Framebuffer,
    field: &dyn ScalarField,
    range: (f64, f64),
    colormap: Colormap,
    alpha: f32,
) {
    let domain = field.domain();
    let span = (range.1 - range.0).max(1e-300);
    let alpha = alpha.clamp(0.0, 1.0);
    for y in 0..base.height() {
        for x in 0..base.width() {
            let uv = Vec2::new(
                (x as f64 + 0.5) / base.width() as f64,
                (y as f64 + 0.5) / base.height() as f64,
            );
            let value = field.value(domain.from_unit(uv));
            let t = (((value - range.0) / span) as f32).clamp(0.0, 1.0);
            if t <= 0.0 {
                continue;
            }
            let color = colormap.map(t);
            let p = base.pixel(x, y);
            *base.pixel_mut(x, y) = p.lerp(color, alpha * t);
        }
    }
}

/// Draws a closed or open polyline given in *domain* coordinates onto the
/// framebuffer, mapping `domain` onto the full image.
pub fn draw_polyline(
    base: &mut Framebuffer,
    domain: Rect,
    points: &[Vec2],
    color: Rgb,
    close: bool,
) {
    if points.len() < 2 {
        return;
    }
    let (w, h) = (base.width(), base.height());
    let to_px = move |p: Vec2| {
        let uv = domain.to_unit(p);
        (uv.x * (w - 1) as f64, uv.y * (h - 1) as f64)
    };
    for w in points.windows(2) {
        let (x0, y0) = to_px(w[0]);
        let (x1, y1) = to_px(w[1]);
        base.draw_line(x0, y0, x1, y1, color);
    }
    if close {
        let (x0, y0) = to_px(*points.last().unwrap());
        let (x1, y1) = to_px(points[0]);
        base.draw_line(x0, y0, x1, y1, color);
    }
}

/// Draws the outline of a rectangle given in domain coordinates (used for the
/// block obstacle in the turbulence figures).
pub fn draw_rect_outline(base: &mut Framebuffer, domain: Rect, rect: Rect, color: Rgb) {
    let corners = [
        rect.min,
        Vec2::new(rect.max.x, rect.min.y),
        rect.max,
        Vec2::new(rect.min.x, rect.max.y),
    ];
    draw_polyline(base, domain, &corners, color, true);
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowfield::ScalarGrid;

    fn base() -> Framebuffer {
        let mut fb = Framebuffer::new(32, 32);
        fb.clear(Rgb::gray(10));
        fb
    }

    fn unit_domain() -> Rect {
        Rect::new(Vec2::ZERO, Vec2::new(1.0, 1.0))
    }

    #[test]
    fn overlay_leaves_zero_regions_untouched() {
        let mut fb = base();
        // Field is zero on the left half, one on the right half.
        let g = ScalarGrid::from_fn(17, 17, unit_domain(), |p| if p.x > 0.5 { 1.0 } else { 0.0 });
        overlay_scalar_field(&mut fb, &g, (0.0, 1.0), Colormap::Rainbow, 0.8);
        // Left untouched, right coloured.
        assert_eq!(fb.pixel(2, 16), Rgb::gray(10));
        assert_ne!(fb.pixel(30, 16), Rgb::gray(10));
    }

    #[test]
    fn overlay_alpha_zero_is_noop() {
        let mut fb = base();
        let g = ScalarGrid::from_fn(9, 9, unit_domain(), |_| 1.0);
        overlay_scalar_field(&mut fb, &g, (0.0, 1.0), Colormap::Heat, 0.0);
        assert!(fb.pixels().iter().all(|p| *p == Rgb::gray(10)));
    }

    #[test]
    fn stronger_concentration_shows_more_colour() {
        let mut fb = base();
        let g = ScalarGrid::from_fn(17, 17, unit_domain(), |p| p.x);
        overlay_scalar_field(&mut fb, &g, (0.0, 1.0), Colormap::Heat, 1.0);
        // The red channel grows from left to right.
        assert!(fb.pixel(30, 16).r > fb.pixel(8, 16).r);
    }

    #[test]
    fn polyline_draws_in_domain_coordinates() {
        let mut fb = base();
        let pts = vec![Vec2::new(0.0, 0.0), Vec2::new(1.0, 1.0)];
        draw_polyline(&mut fb, unit_domain(), &pts, Rgb::new(255, 0, 0), false);
        assert_eq!(fb.pixel(0, 0), Rgb::new(255, 0, 0));
        assert_eq!(fb.pixel(31, 31), Rgb::new(255, 0, 0));
        // Single-point polylines are ignored gracefully.
        draw_polyline(&mut fb, unit_domain(), &[Vec2::ZERO], Rgb::gray(0), true);
    }

    #[test]
    fn rect_outline_touches_all_sides() {
        let mut fb = base();
        let rect = Rect::new(Vec2::new(0.25, 0.25), Vec2::new(0.75, 0.75));
        draw_rect_outline(&mut fb, unit_domain(), rect, Rgb::new(0, 255, 0));
        let lit = fb
            .pixels()
            .iter()
            .filter(|p| **p == Rgb::new(0, 255, 0))
            .count();
        assert!(lit > 30, "outline too sparse: {lit}");
        // Centre stays untouched.
        assert_eq!(fb.pixel(16, 16), Rgb::gray(10));
    }
}
