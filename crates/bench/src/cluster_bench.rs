//! Cluster-tier bench: a real multi-process topology — two worker
//! processes (peer-linked frame caches) behind an in-process router — with
//! a single-node baseline alongside.
//!
//! Measures what the cluster tier *costs* and proves what it *buys*:
//!
//! * **routed hot p50 vs single-node hot p50** — the price of the proxy
//!   hop on the pure-cache-hit path (one extra loopback round trip);
//! * **cross-node peer cache hits** — a frame rendered on one node served
//!   from its cache to a same-spec session placed on the *other* node,
//!   counted end-to-end through the new `cluster` stats block;
//! * **shared co-location** — same-spec shared sessions all landing on the
//!   channel-owning node;
//! * **bit identity** — a frame fetched through the router is byte-equal
//!   to the same frame fetched from the owning worker directly.
//!
//! Results feed `BENCH_cluster.json` (schema `bench_cluster/v1`). The
//! worker processes are the real `spotnoise-service` binary when it sits
//! next to the running bench executable (the normal `cargo build
//! --release` layout); otherwise the bench falls back to in-process
//! servers so `cargo run` from any cwd still measures something honest —
//! the artifact records which topology ran.

use crate::json::Json;
use spotnoise_service::{
    serve, serve_router, ClusterSessionId, RouterHandle, RouterOptions, ServiceClient,
    ServiceHandle, ServiceOptions,
};
use std::io::BufRead;
use std::net::{SocketAddr, TcpListener};
use std::time::{Duration, Instant};

/// Workload knobs of one cluster bench run.
#[derive(Debug, Clone, Copy)]
pub struct ClusterBenchOptions {
    /// Texture side length of the bench sessions.
    pub texture_size: usize,
    /// Spots per frame of the bench sessions.
    pub spot_count: usize,
    /// Cache-hot frame requests per latency sample set.
    pub hot_requests: usize,
    /// Shared sessions created to verify channel co-location.
    pub shared_sessions: usize,
}

impl ClusterBenchOptions {
    /// The default measurement run.
    pub fn standard() -> Self {
        ClusterBenchOptions {
            texture_size: 128,
            spot_count: 800,
            hot_requests: 48,
            shared_sessions: 6,
        }
    }

    /// A reduced run for CI smoke (`--quick`).
    pub fn quick() -> Self {
        ClusterBenchOptions {
            texture_size: 64,
            spot_count: 200,
            hot_requests: 16,
            shared_sessions: 4,
        }
    }

    fn session_body(&self, seed: u64, shared: bool) -> String {
        format!(
            concat!(
                "{{\"field\": {{\"kind\": \"vortex\", \"omega\": 1.0}}, ",
                "\"config\": {{\"texture_size\": {}, \"spot_count\": {}, ",
                "\"spot_texture_size\": 16, \"seed\": {}}}{}}}"
            ),
            self.texture_size,
            self.spot_count,
            seed,
            if shared { ", \"shared\": true" } else { "" }
        )
    }
}

/// The measured cluster run.
#[derive(Debug, Clone)]
pub struct ClusterBenchReport {
    /// `"process"` (real worker binaries) or `"in_process"` (fallback).
    pub topology: String,
    /// Worker node count behind the router.
    pub workers: usize,
    /// Cache-hot p50 against one worker directly, microseconds.
    pub single_hot_p50_us: f64,
    /// Cache-hot p50 through the router, microseconds.
    pub routed_hot_p50_us: f64,
    /// Cross-node peer cache hits observed (from the cluster stats view).
    pub peer_hits: f64,
    /// Peer probes this cluster answered from cache.
    pub peer_serves: f64,
    /// Whether the demo frame was actually served with the peer flag.
    pub peer_frame_flagged: bool,
    /// Whether every same-spec shared session landed on one node.
    pub colocated: bool,
    /// Distinct nodes that received the shared sessions (1 when colocated).
    pub shared_nodes: usize,
    /// Whether a routed frame was byte-identical to the owning worker's.
    pub bit_identical: bool,
    /// Sessions the router created during the run.
    pub sessions_created: f64,
}

/// One worker node: a spawned `spotnoise-service` process, or an
/// in-process server when the binary is not available next to the bench.
enum Worker {
    Process(std::process::Child, SocketAddr),
    InProcess(ServiceHandle),
}

impl Worker {
    fn addr(&self) -> SocketAddr {
        match self {
            Worker::Process(_, addr) => *addr,
            Worker::InProcess(handle) => handle.addr(),
        }
    }

    fn shutdown(self) {
        match self {
            Worker::Process(mut child, addr) => {
                // Ask nicely first so the process exits through its drain
                // path; kill as the backstop.
                if let Ok(mut client) =
                    ServiceClient::connect_with_read_timeout(addr, Some(Duration::from_secs(2)))
                {
                    let _ = client.shutdown();
                }
                let deadline = Instant::now() + Duration::from_secs(5);
                loop {
                    match child.try_wait() {
                        Ok(Some(_)) => return,
                        Ok(None) if Instant::now() < deadline => {
                            std::thread::sleep(Duration::from_millis(20));
                        }
                        _ => break,
                    }
                }
                let _ = child.kill();
                let _ = child.wait();
            }
            Worker::InProcess(handle) => handle.shutdown(),
        }
    }
}

/// Reserves a loopback port by binding an ephemeral listener and dropping
/// it. A tiny race with other processes exists; the bench topology needs
/// the port *before* the worker starts (peers are wired by address), and
/// re-binding a just-released loopback port is reliable in practice.
fn reserve_port() -> std::io::Result<u16> {
    Ok(TcpListener::bind("127.0.0.1:0")?.local_addr()?.port())
}

/// The `spotnoise-service` binary next to the running bench executable,
/// when present.
fn worker_binary() -> Option<std::path::PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let dir = exe.parent()?;
    let name = if cfg!(windows) {
        "spotnoise-service.exe"
    } else {
        "spotnoise-service"
    };
    let path = dir.join(name);
    path.is_file().then_some(path)
}

/// Spawns one worker process and waits for its `listening on http://`
/// banner (the port is pre-reserved, the banner confirms the bind).
fn spawn_worker_process(
    binary: &std::path::Path,
    port: u16,
    node_id: &str,
    peers: &[u16],
) -> Result<Worker, String> {
    let addr: SocketAddr = format!("127.0.0.1:{port}").parse().expect("loopback addr");
    let peer_list = peers
        .iter()
        .map(|p| format!("127.0.0.1:{p}"))
        .collect::<Vec<_>>()
        .join(",");
    let mut cmd = std::process::Command::new(binary);
    cmd.arg("--port")
        .arg(port.to_string())
        .arg("--node-id")
        .arg(node_id)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null());
    if !peer_list.is_empty() {
        cmd.arg("--peers").arg(peer_list);
    }
    let mut child = cmd
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", binary.display()))?;
    let stdout = child.stdout.take().ok_or("worker stdout not captured")?;
    let mut reader = std::io::BufReader::new(stdout);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => {
                let _ = child.kill();
                return Err(format!("worker {node_id} exited before its banner"));
            }
            Ok(_) if line.contains("listening on http://") => break,
            Ok(_) => continue,
            Err(e) => {
                let _ = child.kill();
                return Err(format!("read worker {node_id} banner: {e}"));
            }
        }
    }
    // Keep draining stdout in the background so the worker never blocks on
    // a full pipe.
    std::thread::spawn(move || {
        let mut sink = String::new();
        while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
            sink.clear();
        }
    });
    Ok(Worker::Process(child, addr))
}

/// Starts one in-process worker with the given peer links.
fn start_worker_in_process(port: u16, node_id: &str, peers: &[u16]) -> Result<Worker, String> {
    let options = ServiceOptions {
        node_id: Some(node_id.to_string()),
        peers: peers
            .iter()
            .map(|p| format!("127.0.0.1:{p}").parse().expect("loopback addr"))
            .collect(),
        ..ServiceOptions::default()
    };
    serve(("127.0.0.1", port), options)
        .map(Worker::InProcess)
        .map_err(|e| format!("bind in-process worker {node_id}: {e}"))
}

fn percentile(samples: &mut [f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let rank = ((q / 100.0) * samples.len() as f64).ceil() as usize;
    samples[rank.clamp(1, samples.len()) - 1]
}

/// Warms one frame, then samples `n` cache-hot fetches of it.
fn hot_p50(client: &mut ServiceClient, session: &str, n: usize) -> Result<(f64, Vec<u8>), String> {
    let warm = client
        .fetch_frame(session, 0)
        .map_err(|e| format!("warm fetch: {e}"))?;
    let mut samples = Vec::with_capacity(n);
    for _ in 0..n {
        let start = Instant::now();
        let frame = client
            .fetch_frame(session, 0)
            .map_err(|e| format!("hot fetch: {e}"))?;
        samples.push(start.elapsed().as_secs_f64() * 1e6);
        if !frame.cache_hit {
            return Err("hot fetch was not a cache hit".to_string());
        }
    }
    Ok((percentile(&mut samples, 50.0), warm.bytes))
}

/// Runs the cluster bench: 2 peer-linked workers + router, plus the
/// single-node baseline.
pub fn run_cluster_bench(opts: ClusterBenchOptions) -> Result<ClusterBenchReport, String> {
    let ports = [reserve_port(), reserve_port()];
    let (pa, pb) = match ports {
        [Ok(a), Ok(b)] => (a, b),
        _ => return Err("cannot reserve loopback ports".to_string()),
    };
    let binary = worker_binary();
    let topology = if binary.is_some() {
        "process"
    } else {
        "in_process"
    };
    let spawn = |port: u16, node_id: &str, peers: &[u16]| -> Result<Worker, String> {
        match &binary {
            Some(path) => spawn_worker_process(path, port, node_id, peers),
            None => start_worker_in_process(port, node_id, peers),
        }
    };
    let worker_a = spawn(pa, "w0", &[pb])?;
    let worker_b = match spawn(pb, "w1", &[pa]) {
        Ok(worker) => worker,
        Err(e) => {
            worker_a.shutdown();
            return Err(e);
        }
    };
    let workers = [worker_a, worker_b];
    let result = run_against(&workers, opts, topology);
    for worker in workers {
        worker.shutdown();
    }
    result
}

fn run_against(
    workers: &[Worker],
    opts: ClusterBenchOptions,
    topology: &str,
) -> Result<ClusterBenchReport, String> {
    let router: RouterHandle = serve_router(
        "127.0.0.1:0",
        RouterOptions {
            workers: workers.iter().map(Worker::addr).collect(),
            node_id: Some("bench-router".to_string()),
            ..RouterOptions::default()
        },
    )
    .map_err(|e| format!("bind router: {e}"))?;

    // Phase 1: single-node baseline — straight at worker 0.
    let mut direct =
        ServiceClient::connect(workers[0].addr()).map_err(|e| format!("connect worker 0: {e}"))?;
    let single_session = direct
        .create_session(&opts.session_body(101, false))
        .map_err(|e| format!("create baseline session: {e}"))?;
    let (single_hot_p50_us, _) = hot_p50(&mut direct, &single_session, opts.hot_requests)?;

    // Phase 2: the same workload through the router, plus bit identity:
    // the routed bytes must equal the owning worker's own bytes.
    let mut routed =
        ServiceClient::connect(router.addr()).map_err(|e| format!("connect router: {e}"))?;
    let routed_session = routed
        .create_session(&opts.session_body(202, false))
        .map_err(|e| format!("create routed session: {e}"))?;
    let (routed_hot_p50_us, routed_bytes) =
        hot_p50(&mut routed, &routed_session, opts.hot_requests)?;
    let cluster_id = ClusterSessionId::parse(&routed_session)
        .ok_or_else(|| format!("router returned a non-cluster id {routed_session:?}"))?;
    let owner = workers
        .get(cluster_id.node)
        .ok_or("cluster id names a node outside the topology")?;
    let mut owner_client =
        ServiceClient::connect(owner.addr()).map_err(|e| format!("connect owner: {e}"))?;
    let owner_frame = owner_client
        .fetch_frame(&cluster_id.local, 0)
        .map_err(|e| format!("owner fetch: {e}"))?;
    let bit_identical = owner_frame.bytes == routed_bytes;

    // Phase 3: cross-node peer cache lookup. Same-spec private sessions
    // spread over the ring; find two on different nodes, render the frame
    // on one, and the other node must serve it from its sibling's cache.
    let mut first: Option<ClusterSessionId> = None;
    let mut second: Option<ClusterSessionId> = None;
    for _ in 0..32 {
        let sid = routed
            .create_session(&opts.session_body(303, false))
            .map_err(|e| format!("create peer-demo session: {e}"))?;
        let id = ClusterSessionId::parse(&sid).ok_or("non-cluster id from router")?;
        match &first {
            None => first = Some(id),
            Some(a) if a.node != id.node => {
                second = Some(id);
                break;
            }
            Some(_) => {}
        }
    }
    let (first, second) = match (first, second) {
        (Some(a), Some(b)) => (a, b),
        _ => return Err("32 private sessions all landed on one node".to_string()),
    };
    routed
        .fetch_frame(&first.format(), 0)
        .map_err(|e| format!("render on node {}: {e}", first.node))?;
    let peer_frame = routed
        .fetch_frame(&second.format(), 0)
        .map_err(|e| format!("peer fetch on node {}: {e}", second.node))?;
    let peer_frame_flagged = peer_frame.peer;

    // Phase 4: shared co-location — every same-spec shared session must
    // land on its channel's owning node.
    let mut shared_nodes = std::collections::BTreeSet::new();
    for _ in 0..opts.shared_sessions.max(2) {
        let sid = routed
            .create_session(&opts.session_body(404, true))
            .map_err(|e| format!("create shared session: {e}"))?;
        let id = ClusterSessionId::parse(&sid).ok_or("non-cluster id from router")?;
        shared_nodes.insert(id.node);
    }

    // Read the cluster counters off the router's aggregated /stats.
    let stats = routed.stats().map_err(|e| format!("router stats: {e}"))?;
    let cluster_counter = |name: &str| -> f64 {
        stats
            .get("cluster")
            .and_then(|c| c.get("cluster"))
            .and_then(|c| c.get(name))
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
    };
    let sessions_created = stats
        .get("router")
        .and_then(|r| r.get("sessions_created"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0);

    let report = ClusterBenchReport {
        topology: topology.to_string(),
        workers: workers.len(),
        single_hot_p50_us,
        routed_hot_p50_us,
        peer_hits: cluster_counter("peer_hits"),
        peer_serves: cluster_counter("peer_serves"),
        peer_frame_flagged,
        colocated: shared_nodes.len() == 1,
        shared_nodes: shared_nodes.len(),
        bit_identical,
        sessions_created,
    };
    router.shutdown();
    Ok(report)
}

/// Human-readable summary.
pub fn format_report(report: &ClusterBenchReport) -> String {
    format!(
        "cluster bench ({} topology, {} workers)\n\
         \x20 hot p50: single {:.1}us, routed {:.1}us ({:.2}x)\n\
         \x20 peer cache: {} hits / {} serves, demo frame flagged: {}\n\
         \x20 shared co-location: {} node(s), bit-identical through router: {}\n\
         \x20 sessions created through router: {}",
        report.topology,
        report.workers,
        report.single_hot_p50_us,
        report.routed_hot_p50_us,
        report.routed_hot_p50_us / report.single_hot_p50_us.max(f64::MIN_POSITIVE),
        report.peer_hits,
        report.peer_serves,
        report.peer_frame_flagged,
        report.shared_nodes,
        report.bit_identical,
        report.sessions_created,
    )
}

/// Serializes the report in the `BENCH_cluster.json` schema.
pub fn report_to_json(report: &ClusterBenchReport) -> String {
    Json::object([
        ("schema", Json::str("bench_cluster/v1")),
        ("topology", Json::str(report.topology.clone())),
        ("workers", Json::num(report.workers as f64)),
        ("single_hot_p50_us", Json::num(report.single_hot_p50_us)),
        ("routed_hot_p50_us", Json::num(report.routed_hot_p50_us)),
        ("peer_hits", Json::num(report.peer_hits)),
        ("peer_serves", Json::num(report.peer_serves)),
        ("peer_frame_flagged", Json::Bool(report.peer_frame_flagged)),
        ("colocated", Json::Bool(report.colocated)),
        ("shared_nodes", Json::num(report.shared_nodes as f64)),
        ("bit_identical", Json::Bool(report.bit_identical)),
        ("sessions_created", Json::num(report.sessions_created)),
    ])
    .to_string_pretty()
}
