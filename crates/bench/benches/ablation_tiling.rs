//! Ablation: texture tiling vs round-robin spot partitioning.
//!
//! "The tradeoff here is the amount of texture space vs. the additional work
//! to be done when blending the final texture" plus the duplicated
//! overlap-boundary spots (paper §3–4). This bench compares the two
//! partitioning strategies at 2 and 4 pipes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use softpipe::machine::MachineConfig;
use spotnoise::dnc::synthesize_dnc;
use spotnoise_bench::atmospheric_scaled;

fn bench_tiling(c: &mut Criterion) {
    let base = atmospheric_scaled();
    let mut group = c.benchmark_group("ablation_tiling");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for pipes in [2usize, 4] {
        let machine = MachineConfig::new(8, pipes);
        for tiled in [false, true] {
            let mut cfg = base.config;
            cfg.use_tiling = tiled;
            let label = if tiled { "tiled" } else { "round_robin" };
            let id = BenchmarkId::from_parameter(format!("{pipes}pipes_{label}"));
            group.bench_with_input(id, &cfg, |b, cfg| {
                b.iter(|| synthesize_dnc(base.field.as_ref(), &base.spots, cfg, &machine))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_tiling);
criterion_main!(benches);
