//! Integration tests of the full interactive pipeline across crates:
//! application model (flowsim) -> spot noise synthesis (spotnoise) ->
//! presentation (flowviz) on the simulated graphics subsystem (softpipe).

use flowsim::SmogModel;
use flowviz::{overlay_scalar_field, texture_to_framebuffer, Colormap};
use softpipe::machine::MachineConfig;
use softpipe::Rgb;
use spotnoise::config::{SpotKind, SynthesisConfig};
use spotnoise::metrics::timed;
use spotnoise::pipeline::{ExecutionMode, Pipeline};

fn small_cfg() -> SynthesisConfig {
    SynthesisConfig {
        texture_size: 128,
        spot_count: 400,
        spot_kind: SpotKind::Bent { rows: 8, cols: 3 },
        ..SynthesisConfig::atmospheric_paper()
    }
}

#[test]
fn smog_pipeline_produces_animated_frames_with_reports() {
    let mut model = SmogModel::new(27, 28, 5);
    let machine = MachineConfig::new(4, 2);
    let mut pipeline = Pipeline::new(
        small_cfg(),
        ExecutionMode::DivideAndConquer(machine),
        model.domain(),
    );

    let mut previous_texture = None;
    for _ in 0..3 {
        let (_, read_us) = timed(|| model.step(0.2));
        let frame = pipeline.advance(model.wind_field(), 0.2, read_us);

        // Every frame carries a divide-and-conquer report with two groups.
        let dnc = frame.dnc.as_ref().expect("dnc report");
        assert_eq!(dnc.groups.len(), 2);
        assert!(dnc.predicted.textures_per_second > 0.0);
        assert!(frame.metrics.timings.read_us > 0);
        assert_eq!(frame.metrics.spots, 400);

        // Frames differ because the wind changes and the spots advect.
        if let Some(prev) = &previous_texture {
            assert!(frame.texture.absolute_difference(prev) > 0.0);
        }
        previous_texture = Some(frame.texture.clone());

        // The display texture composes into a valid Figure-6-style image.
        let mut fb = texture_to_framebuffer(&frame.display, 128, 128, Colormap::Grayscale);
        let range = model.concentration().range();
        overlay_scalar_field(
            &mut fb,
            model.concentration(),
            range,
            Colormap::Rainbow,
            0.5,
        );
        flowviz::draw_map(&mut fb, model.domain(), Rgb::new(255, 255, 255));
        assert_eq!(fb.width(), 128);
    }
    assert_eq!(pipeline.frames(), 3);
}

#[test]
fn pipeline_throughput_counts_synthesis_stages_only() {
    let mut model = SmogModel::new(27, 28, 9);
    let mut pipeline = Pipeline::new(small_cfg(), ExecutionMode::Sequential, model.domain());
    model.step(0.1);
    let frame = pipeline.advance(model.wind_field(), 0.1, 12345);
    let t = frame.metrics.timings;
    // The paper's tables count only steps 2 + 3; reading the data set and
    // rendering the scene are excluded.
    let synth_only = t.synthesis_seconds();
    assert!(synth_only > 0.0);
    assert!(synth_only <= t.total_seconds());
    assert!((t.textures_per_second() - 1.0 / synth_only).abs() < 1e-9);
}

#[test]
fn sequential_and_dnc_pipelines_agree_on_the_same_animator_seed() {
    // Two pipelines with the same configuration and seed produce the same
    // first-frame texture regardless of the execution mode (up to float
    // reassociation in the parallel gather).
    let mut model = SmogModel::new(27, 28, 13);
    model.step(0.2);
    let cfg = small_cfg();
    let mut seq = Pipeline::new(cfg, ExecutionMode::Sequential, model.domain());
    let mut par = Pipeline::new(
        cfg,
        ExecutionMode::DivideAndConquer(MachineConfig::new(4, 4)),
        model.domain(),
    );
    let a = seq.advance(model.wind_field(), 0.1, 0);
    let b = par.advance(model.wind_field(), 0.1, 0);
    let mean_diff =
        a.texture.absolute_difference(&b.texture) / (cfg.texture_size * cfg.texture_size) as f64;
    assert!(mean_diff < 1e-4, "mean texel difference {mean_diff}");
}
