//! Reading and writing sampled fields.
//!
//! The turbulence application of the paper browses a multi-terabyte database
//! of stored DNS time slices ("read data set", pipeline step 1). This module
//! provides the simple, self-describing on-disk format used by the
//! `flowsim::browser` substrate: a small ASCII header followed by the sample
//! values in text form. The format intentionally favours debuggability over
//! density — compactness is not what the reproduction measures.

use crate::grid::{RegularGrid, ScalarGrid};
use crate::vec2::{Rect, Vec2};
use std::fmt::Write as _;
use std::io::{self, BufRead, Write};
use std::path::Path;

/// Magic line identifying a serialized vector grid.
const VECTOR_MAGIC: &str = "spotnoise-vector-grid-v1";
/// Magic line identifying a serialized scalar grid.
const SCALAR_MAGIC: &str = "spotnoise-scalar-grid-v1";

/// Serialises a vector grid into the text format.
pub fn write_vector_grid(grid: &RegularGrid, mut w: impl Write) -> io::Result<()> {
    let d = grid.domain();
    let mut header = String::new();
    let _ = writeln!(header, "{VECTOR_MAGIC}");
    let _ = writeln!(
        header,
        "{} {} {} {} {} {}",
        grid.nx(),
        grid.ny(),
        d.min.x,
        d.min.y,
        d.max.x,
        d.max.y
    );
    w.write_all(header.as_bytes())?;
    let mut body = String::with_capacity(grid.samples().len() * 16);
    for v in grid.samples() {
        let _ = writeln!(body, "{} {}", v.x, v.y);
    }
    w.write_all(body.as_bytes())
}

/// Deserialises a vector grid from the text format.
pub fn read_vector_grid(r: impl BufRead) -> io::Result<RegularGrid> {
    let mut lines = r.lines();
    let magic = next_line(&mut lines)?;
    if magic.trim() != VECTOR_MAGIC {
        return Err(bad_data(format!("unexpected magic line: {magic:?}")));
    }
    let header = next_line(&mut lines)?;
    let nums = parse_f64s(&header, 6)?;
    let nx = nums[0] as usize;
    let ny = nums[1] as usize;
    if nx < 2 || ny < 2 {
        return Err(bad_data(format!("invalid grid shape {nx}x{ny}")));
    }
    let domain = Rect::new(Vec2::new(nums[2], nums[3]), Vec2::new(nums[4], nums[5]));
    let mut grid = RegularGrid::zeros(nx, ny, domain);
    for j in 0..ny {
        for i in 0..nx {
            let line = next_line(&mut lines)?;
            let v = parse_f64s(&line, 2)?;
            *grid.node_mut(i, j) = Vec2::new(v[0], v[1]);
        }
    }
    Ok(grid)
}

/// Serialises a scalar grid into the text format.
pub fn write_scalar_grid(grid: &ScalarGrid, mut w: impl Write) -> io::Result<()> {
    let d = grid.domain();
    let mut out = String::new();
    let _ = writeln!(out, "{SCALAR_MAGIC}");
    let _ = writeln!(
        out,
        "{} {} {} {} {} {}",
        grid.nx(),
        grid.ny(),
        d.min.x,
        d.min.y,
        d.max.x,
        d.max.y
    );
    for v in grid.samples() {
        let _ = writeln!(out, "{v}");
    }
    w.write_all(out.as_bytes())
}

/// Deserialises a scalar grid from the text format.
pub fn read_scalar_grid(r: impl BufRead) -> io::Result<ScalarGrid> {
    let mut lines = r.lines();
    let magic = next_line(&mut lines)?;
    if magic.trim() != SCALAR_MAGIC {
        return Err(bad_data(format!("unexpected magic line: {magic:?}")));
    }
    let header = next_line(&mut lines)?;
    let nums = parse_f64s(&header, 6)?;
    let nx = nums[0] as usize;
    let ny = nums[1] as usize;
    if nx < 2 || ny < 2 {
        return Err(bad_data(format!("invalid grid shape {nx}x{ny}")));
    }
    let domain = Rect::new(Vec2::new(nums[2], nums[3]), Vec2::new(nums[4], nums[5]));
    let mut grid = ScalarGrid::zeros(nx, ny, domain);
    for j in 0..ny {
        for i in 0..nx {
            let line = next_line(&mut lines)?;
            let v = parse_f64s(&line, 1)?;
            *grid.node_mut(i, j) = v[0];
        }
    }
    Ok(grid)
}

/// Writes a vector grid to a file path.
pub fn save_vector_grid(grid: &RegularGrid, path: impl AsRef<Path>) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_vector_grid(grid, io::BufWriter::new(file))
}

/// Reads a vector grid from a file path.
pub fn load_vector_grid(path: impl AsRef<Path>) -> io::Result<RegularGrid> {
    let file = std::fs::File::open(path)?;
    read_vector_grid(io::BufReader::new(file))
}

fn next_line(lines: &mut impl Iterator<Item = io::Result<String>>) -> io::Result<String> {
    lines
        .next()
        .ok_or_else(|| bad_data("unexpected end of file".to_string()))?
}

fn parse_f64s(line: &str, expected: usize) -> io::Result<Vec<f64>> {
    let vals: Result<Vec<f64>, _> = line.split_whitespace().map(str::parse::<f64>).collect();
    let vals = vals.map_err(|e| bad_data(format!("bad number in {line:?}: {e}")))?;
    if vals.len() != expected {
        return Err(bad_data(format!(
            "expected {expected} values, found {} in {line:?}",
            vals.len()
        )));
    }
    Ok(vals)
}

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::ScalarGrid;

    fn sample_grid() -> RegularGrid {
        let dom = Rect::new(Vec2::new(-1.0, 0.0), Vec2::new(2.0, 1.5));
        RegularGrid::from_fn(7, 5, dom, |p| Vec2::new(p.x * 2.0, p.y - p.x))
    }

    #[test]
    fn vector_grid_roundtrip_preserves_samples_and_domain() {
        let g = sample_grid();
        let mut buf = Vec::new();
        write_vector_grid(&g, &mut buf).unwrap();
        let back = read_vector_grid(io::BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(back.nx(), g.nx());
        assert_eq!(back.ny(), g.ny());
        assert_eq!(back.domain(), g.domain());
        for (a, b) in g.samples().iter().zip(back.samples()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn scalar_grid_roundtrip() {
        let dom = Rect::new(Vec2::ZERO, Vec2::new(1.0, 1.0));
        let g = ScalarGrid::from_fn(4, 6, dom, |p| p.x * 10.0 + p.y);
        let mut buf = Vec::new();
        write_scalar_grid(&g, &mut buf).unwrap();
        let back = read_scalar_grid(io::BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(back.nx(), 4);
        assert_eq!(back.ny(), 6);
        for (a, b) in g.samples().iter().zip(back.samples()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn reject_wrong_magic() {
        let data = b"not-a-grid\n1 2 3 4 5 6\n";
        let err = read_vector_grid(io::BufReader::new(&data[..])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn reject_truncated_body() {
        let g = sample_grid();
        let mut buf = Vec::new();
        write_vector_grid(&g, &mut buf).unwrap();
        let truncated = &buf[..buf.len() / 2];
        let err = read_vector_grid(io::BufReader::new(truncated)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn reject_malformed_numbers() {
        let data = format!("{VECTOR_MAGIC}\n2 2 0 0 1 1\nfoo bar\n0 0\n0 0\n0 0\n");
        let err = read_vector_grid(io::BufReader::new(data.as_bytes())).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn reject_bad_shape() {
        let data = format!("{VECTOR_MAGIC}\n1 2 0 0 1 1\n");
        let err = read_vector_grid(io::BufReader::new(data.as_bytes())).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("flowfield_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("grid.txt");
        let g = sample_grid();
        save_vector_grid(&g, &path).unwrap();
        let back = load_vector_grid(&path).unwrap();
        assert_eq!(back.samples(), g.samples());
        let _ = std::fs::remove_file(&path);
    }
}
