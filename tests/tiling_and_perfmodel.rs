//! Integration tests of the texture-tiling trade-off and of the analytic
//! performance model against the paper's qualitative observations.

use softpipe::cost::{CpuWork, PipeWork};
use softpipe::machine::MachineConfig;
use spotnoise::config::SynthesisConfig;
use spotnoise::dnc::synthesize_dnc;
use spotnoise::perfmodel::predict_even_split;
use spotnoise::spot::generate_spots;
use spotnoise_bench::{analytic_small, paper_table1, paper_table2};

/// Work totals per texture for a paper workload, derived from its config.
fn work_totals(cfg: &SynthesisConfig, fragments_per_spot: u64) -> (CpuWork, PipeWork) {
    let (rows, _cols) = match cfg.spot_kind {
        spotnoise::config::SpotKind::Bent { rows, cols } => (rows, cols),
        spotnoise::config::SpotKind::Disc => (1, 4),
    };
    let cpu = CpuWork {
        streamline_steps: (cfg.spot_count * rows) as u64,
        mesh_vertices: cfg.vertices_per_texture() as u64,
        spots: cfg.spot_count as u64,
    };
    let pipe = PipeWork {
        vertices: cfg.vertices_per_texture() as u64,
        fragments: cfg.spot_count as u64 * fragments_per_spot,
        state_changes: 0,
        blend_texels: 0,
    };
    (cpu, pipe)
}

/// Correlation between the published table and the model's prediction of the
/// same cells (on speedups relative to the (1,1) cell).
fn shape_agreement(
    published: &[(usize, usize, f64)],
    cfg: &SynthesisConfig,
    fragments: u64,
) -> f64 {
    let (cpu, pipe) = work_totals(cfg, fragments);
    let base_pub = published
        .iter()
        .find(|(p, g, _)| *p == 1 && *g == 1)
        .unwrap()
        .2;
    let base_sim = predict_even_split(&MachineConfig::new(1, 1), &cpu, &pipe, cfg.texture_size)
        .textures_per_second;
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (p, g, v) in published {
        let sim = predict_even_split(&MachineConfig::new(*p, *g), &cpu, &pipe, cfg.texture_size)
            .textures_per_second;
        xs.push(v / base_pub);
        ys.push(sim / base_sim);
    }
    pearson(&xs, &ys)
}

fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let sx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum::<f64>().sqrt();
    let sy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum::<f64>().sqrt();
    cov / (sx * sy).max(1e-12)
}

#[test]
fn perf_model_reproduces_table1_shape() {
    let r = shape_agreement(&paper_table1(), &SynthesisConfig::atmospheric_paper(), 600);
    assert!(r > 0.85, "Table 1 shape correlation too low: {r}");
}

#[test]
fn perf_model_reproduces_table2_shape() {
    let r = shape_agreement(&paper_table2(), &SynthesisConfig::turbulence_paper(), 40);
    assert!(r > 0.85, "Table 2 shape correlation too low: {r}");
}

#[test]
fn saturation_point_is_roughly_four_processors_per_pipe() {
    // Paper: "using more processors does indeed improve the texture
    // generation rate, with a maximum of approximately 4 processors per
    // graphics pipe."
    let cfg = SynthesisConfig::atmospheric_paper();
    let (cpu, pipe) = work_totals(&cfg, 600);
    let rate = |p: usize| {
        predict_even_split(&MachineConfig::new(p, 1), &cpu, &pipe, cfg.texture_size)
            .textures_per_second
    };
    let r2 = rate(2);
    let r4 = rate(4);
    let r8 = rate(8);
    assert!(
        r4 > 1.2 * r2,
        "4 procs should clearly beat 2 ({r4} vs {r2})"
    );
    assert!(
        r8 < 1.15 * r4,
        "8 procs should not beat 4 by much ({r8} vs {r4})"
    );
}

#[test]
fn tiling_duplicates_work_but_preserves_the_texture() {
    let w = analytic_small();
    let machine = MachineConfig::new(4, 4);
    let mut tiled_cfg = w.config;
    tiled_cfg.use_tiling = true;
    let spots = generate_spots(w.config.spot_count, w.field.domain(), 1.0, 99);
    let round_robin = synthesize_dnc(w.field.as_ref(), &spots, &w.config, &machine);
    let tiled = synthesize_dnc(w.field.as_ref(), &spots, &tiled_cfg, &machine);

    // Same texture either way (up to float reassociation).
    let mean_diff = round_robin.texture.absolute_difference(&tiled.texture)
        / (w.config.texture_size * w.config.texture_size) as f64;
    assert!(
        mean_diff < 1e-4,
        "partitioning changed the texture: {mean_diff}"
    );

    // The tiled run did strictly more CPU work (duplicated boundary spots)
    // but strictly less composition work per texel than full additive
    // gathering of four full-frame partials.
    assert!(tiled.duplicated_spots > 0);
    assert!(tiled.total_cpu_work().spots > round_robin.total_cpu_work().spots);
    assert!(tiled.compose_texels < round_robin.compose_texels);
}

#[test]
fn bus_utilisation_stays_below_the_papers_bound() {
    // Paper §5.1: the bus is not the limiting factor (116 MB/s of 800 MB/s).
    let cfg = SynthesisConfig::atmospheric_paper();
    let (cpu, pipe) = work_totals(&cfg, 600);
    let machine = MachineConfig::onyx2_full();
    let pred = predict_even_split(&machine, &cpu, &pipe, cfg.texture_size);
    let bytes_per_texture = machine.cost.vertex_bytes(pipe.vertices) as f64;
    let bytes_per_second = bytes_per_texture * pred.textures_per_second;
    let utilisation = bytes_per_second / machine.cost.bus_bytes_per_second;
    assert!(utilisation < 0.5, "bus utilisation {utilisation} too high");
    assert!(
        utilisation > 0.01,
        "bus utilisation {utilisation} suspiciously low"
    );
}
