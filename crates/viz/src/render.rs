//! Rendering textures and scalar fields into framebuffers.
//!
//! Pipeline step 4: "an image is rendered by mapping the texture onto a
//! geometric surface". In the reproduction the geometric surface is the full
//! image plane, so this step amounts to resampling the spot-noise texture
//! into the framebuffer through a colour map; other visualization techniques
//! are then superimposed by [`crate::overlay`].

use crate::colormap::Colormap;
use flowfield::{ScalarField, Vec2};
use softpipe::{Framebuffer, Texture};

/// Renders a (normalised, `[0,1]`-valued) texture into a new framebuffer of
/// size `width` x `height` through a colour map, sampling bilinearly.
pub fn texture_to_framebuffer(
    texture: &Texture,
    width: usize,
    height: usize,
    colormap: Colormap,
) -> Framebuffer {
    let mut fb = Framebuffer::new(width, height);
    for y in 0..height {
        for x in 0..width {
            let u = (x as f32 + 0.5) / width as f32;
            let v = (y as f32 + 0.5) / height as f32;
            let value = texture.sample_bilinear(u, v);
            *fb.pixel_mut(x, y) = colormap.map(value);
        }
    }
    fb
}

/// Renders a scalar field into a new framebuffer: values are normalised into
/// `[0, 1]` using the supplied range and passed through the colour map.
pub fn scalar_field_to_framebuffer(
    field: &dyn ScalarField,
    width: usize,
    height: usize,
    range: (f64, f64),
    colormap: Colormap,
) -> Framebuffer {
    let mut fb = Framebuffer::new(width, height);
    let domain = field.domain();
    let span = (range.1 - range.0).max(1e-300);
    for y in 0..height {
        for x in 0..width {
            let uv = Vec2::new(
                (x as f64 + 0.5) / width as f64,
                (y as f64 + 0.5) / height as f64,
            );
            let value = field.value(domain.from_unit(uv));
            let t = ((value - range.0) / span) as f32;
            *fb.pixel_mut(x, y) = colormap.map(t);
        }
    }
    fb
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowfield::{Rect, ScalarGrid};
    use softpipe::Rgb;

    #[test]
    fn texture_maps_through_grayscale() {
        let tex = Texture::from_fn(16, 16, |u, _| u);
        let fb = texture_to_framebuffer(&tex, 32, 32, Colormap::Grayscale);
        assert_eq!(fb.width(), 32);
        // Left side dark, right side bright.
        assert!(fb.pixel(1, 16).r < 40);
        assert!(fb.pixel(30, 16).r > 200);
    }

    #[test]
    fn constant_texture_gives_uniform_framebuffer() {
        let mut tex = Texture::new(8, 8);
        tex.fill(0.5);
        let fb = texture_to_framebuffer(&tex, 16, 16, Colormap::Grayscale);
        let first = fb.pixel(0, 0);
        assert!(fb.pixels().iter().all(|p| *p == first));
        assert!(first.r > 100 && first.r < 150);
    }

    #[test]
    fn scalar_field_rendering_uses_range() {
        let dom = Rect::new(Vec2::ZERO, Vec2::new(1.0, 1.0));
        let g = ScalarGrid::from_fn(9, 9, dom, |p| p.x * 10.0);
        let fb = scalar_field_to_framebuffer(&g, 20, 20, (0.0, 10.0), Colormap::Rainbow);
        // Low end is blue, high end is red.
        assert!(fb.pixel(0, 10).b > 150);
        assert!(fb.pixel(19, 10).r > 150);
        // Degenerate range does not panic and produces a valid image.
        let flat = scalar_field_to_framebuffer(&g, 4, 4, (5.0, 5.0), Colormap::Rainbow);
        assert_eq!(flat.width(), 4);
        let _ = Rgb::default();
    }
}
