//! Minimal JSON emission and parsing.
//!
//! The container this repository builds in has no registry access, so
//! `serde_json` is unavailable; the JSON artifacts the workspace produces
//! (`tableN.json`, `BENCH_raster.json`, `BENCH_service.json`, the synthesis
//! server's `/stats` document and request bodies) are emitted and read
//! through this small value type instead. Output is pretty-printed with
//! two-space indents and stable key order (insertion order). [`Json::parse`]
//! is the matching reader, used by the `--check` smoke steps and by the
//! server front end.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Finite number (non-finite values are emitted as `null`, like
    /// serde_json's default behaviour for f64).
    Number(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Json>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn object(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds an array from values.
    pub fn array(values: impl IntoIterator<Item = Json>) -> Json {
        Json::Array(values.into_iter().collect())
    }

    /// Builds a string value.
    pub fn str(value: impl Into<String>) -> Json {
        Json::Str(value.into())
    }

    /// Builds a number value.
    pub fn num(value: f64) -> Json {
        Json::Number(value)
    }

    /// Parses a JSON document (objects, arrays, strings with the escapes
    /// the emitter produces, numbers, booleans, null). Trailing content
    /// after the document is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        let value = p.value()?;
        p.skip_whitespace();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close_pad = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => {
                if !n.is_finite() {
                    out.push_str("null");
                } else if *n == n.trunc() && n.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&close_pad);
                out.push(']');
            }
            Json::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in pairs.iter().enumerate() {
                    out.push_str(&pad);
                    Json::Str(key.clone()).write(out, indent + 1);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&close_pad);
                out.push('}');
            }
        }
    }
}

/// Maximum container nesting the parser accepts. The parser recurses per
/// nesting level, and untrusted input reaches it through the synthesis
/// server's request bodies — without a cap, a few kilobytes of `[[[[...`
/// would overflow the connection thread's stack and abort the process.
const MAX_PARSE_DEPTH: usize = 128;

/// Recursive-descent parser state over the input bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_PARSE_DEPTH} at byte {}",
                self.pos
            ));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Json, String> {
        self.enter()?;
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Object(pairs));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Array(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("invalid \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!("invalid escape {:?}", other.map(|c| c as char)))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so the
                    // byte sequence is valid; find the char boundary).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().ok_or("empty string tail")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        token
            .parse::<f64>()
            .map(Json::Number)
            .map_err(|e| format!("bad number {token:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.to_string_pretty(), "null\n");
        assert_eq!(Json::Bool(true).to_string_pretty(), "true\n");
        assert_eq!(Json::num(3.0).to_string_pretty(), "3\n");
        assert_eq!(Json::num(3.25).to_string_pretty(), "3.25\n");
        assert_eq!(Json::num(f64::NAN).to_string_pretty(), "null\n");
    }

    #[test]
    fn strings_are_escaped() {
        let s = Json::str("a\"b\\c\nd").to_string_pretty();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"\n");
    }

    #[test]
    fn parse_round_trips_emitted_documents() {
        let v = Json::object([
            ("schema", Json::str("bench_raster/v1")),
            ("threads", Json::num(4.0)),
            ("flag", Json::Bool(true)),
            ("nothing", Json::Null),
            (
                "cases",
                Json::array([Json::object([
                    ("name", Json::str("quad \"fast\"\npath")),
                    ("speedup", Json::num(2.25)),
                    ("negative", Json::num(-1.5e-3)),
                ])]),
            ),
        ]);
        let text = v.to_string_pretty();
        let parsed = Json::parse(&text).expect("round trip");
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some("bench_raster/v1")
        );
        assert_eq!(parsed.get("flag").and_then(Json::as_bool), Some(true));
        assert_eq!(parsed.get("schema").and_then(Json::as_bool), None);
        assert_eq!(parsed.get("threads").and_then(Json::as_f64), Some(4.0));
        let cases = parsed.get("cases").and_then(Json::as_array).unwrap();
        assert_eq!(cases.len(), 1);
        assert_eq!(
            cases[0].get("name").and_then(Json::as_str),
            Some("quad \"fast\"\npath")
        );
        assert_eq!(cases[0].get("speedup").and_then(Json::as_f64), Some(2.25));
        assert_eq!(
            cases[0].get("negative").and_then(Json::as_f64),
            Some(-1.5e-3)
        );
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("nope").is_err());
    }

    #[test]
    fn parse_bounds_nesting_depth() {
        // Within the cap: parses fine.
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(Json::parse(&ok).is_ok());
        // A pathological bomb errors instead of overflowing the stack.
        let bomb = "[".repeat(100_000);
        let err = Json::parse(&bomb).unwrap_err();
        assert!(err.contains("nesting"), "unexpected error: {err}");
        let obj_bomb = "{\"k\":".repeat(100_000);
        assert!(Json::parse(&obj_bomb).is_err());
    }

    #[test]
    fn nested_structure_is_indented() {
        let v = Json::object([
            ("name", Json::str("quad")),
            ("values", Json::array([Json::num(1.0), Json::num(2.0)])),
            ("empty", Json::array([])),
        ]);
        let text = v.to_string_pretty();
        assert!(text.contains("\"name\": \"quad\""));
        assert!(text.contains("\"empty\": []"));
        assert!(text.starts_with("{\n  "));
        assert!(text.ends_with("}\n"));
    }
}
