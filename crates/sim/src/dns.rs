//! Direct numerical simulation of the flow behind a block.
//!
//! The paper's second application browses slices of a terabyte-scale DNS of
//! turbulent flow (Verstappen & Veldman). Neither that code nor its data are
//! available, so this module implements the documented substitute: a 2-D
//! incompressible Navier–Stokes solver (semi-Lagrangian advection, explicit
//! diffusion, Chorin-style pressure projection with a Jacobi solver) for a
//! channel with a block obstacle. Run long enough, the wake behind the block
//! destabilises into a vortex street with strongly fluctuating direction and
//! magnitude — the flow character the paper's Figure 7 shows and the reason
//! bent spots are needed. Slices are sampled on a 278x208 rectilinear grid
//! exactly like the original data set.

use crate::obstacle::Block;
use flowfield::{Rect, RectilinearGrid, RegularGrid, Vec2, VectorField};
use serde::{Deserialize, Serialize};

/// Configuration of the DNS substitute solver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DnsConfig {
    /// Grid nodes along the channel.
    pub nx: usize,
    /// Grid nodes across the channel.
    pub ny: usize,
    /// Channel domain.
    pub domain: Rect,
    /// Inflow speed at the left boundary.
    pub inflow: f64,
    /// Kinematic viscosity.
    pub viscosity: f64,
    /// Number of Jacobi iterations for the pressure projection.
    pub pressure_iterations: usize,
    /// Amplitude of the inflow perturbation that triggers the instability.
    pub perturbation: f64,
}

impl DnsConfig {
    /// The paper's slice resolution (278x208) over a 10x4 channel.
    pub fn paper_resolution() -> Self {
        DnsConfig {
            nx: 278,
            ny: 208,
            domain: Rect::new(Vec2::ZERO, Vec2::new(10.0, 4.0)),
            inflow: 1.0,
            viscosity: 1.5e-3,
            pressure_iterations: 60,
            perturbation: 0.02,
        }
    }

    /// A small configuration for unit tests and examples.
    pub fn small_test() -> Self {
        DnsConfig {
            nx: 72,
            ny: 40,
            domain: Rect::new(Vec2::ZERO, Vec2::new(10.0, 4.0)),
            inflow: 1.0,
            viscosity: 2.0e-3,
            pressure_iterations: 40,
            perturbation: 0.03,
        }
    }
}

/// The solver state.
#[derive(Debug, Clone)]
pub struct DnsSolver {
    cfg: DnsConfig,
    block: Block,
    mask: Vec<bool>,
    u: Vec<f64>,
    v: Vec<f64>,
    time: f64,
    steps: u64,
}

impl DnsSolver {
    /// Creates a solver with the standard block and an impulsively started
    /// uniform inflow.
    pub fn new(cfg: DnsConfig) -> Self {
        let block = Block::standard(cfg.domain);
        let mask = block.mask(cfg.nx, cfg.ny, cfg.domain);
        let n = cfg.nx * cfg.ny;
        let mut solver = DnsSolver {
            cfg,
            block,
            mask,
            u: vec![cfg.inflow; n],
            v: vec![0.0; n],
            time: 0.0,
            steps: 0,
        };
        solver.enforce_boundaries();
        solver
    }

    /// The configuration.
    pub fn config(&self) -> &DnsConfig {
        &self.cfg
    }

    /// The obstacle.
    pub fn block(&self) -> &Block {
        &self.block
    }

    /// Simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Number of steps taken.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    #[inline]
    fn idx(&self, i: usize, j: usize) -> usize {
        j * self.cfg.nx + i
    }

    fn spacing(&self) -> Vec2 {
        Vec2::new(
            self.cfg.domain.width() / (self.cfg.nx - 1) as f64,
            self.cfg.domain.height() / (self.cfg.ny - 1) as f64,
        )
    }

    /// Position of node `(i, j)` in world coordinates.
    pub fn node_position(&self, i: usize, j: usize) -> Vec2 {
        self.cfg.domain.from_unit(Vec2::new(
            i as f64 / (self.cfg.nx - 1) as f64,
            j as f64 / (self.cfg.ny - 1) as f64,
        ))
    }

    /// Velocity at node `(i, j)`.
    pub fn velocity_at(&self, i: usize, j: usize) -> Vec2 {
        let k = self.idx(i, j);
        Vec2::new(self.u[k], self.v[k])
    }

    /// Bilinear velocity sample at an arbitrary world position.
    pub fn sample(&self, p: Vec2) -> Vec2 {
        let uv = self.cfg.domain.to_unit(self.cfg.domain.clamp(p));
        let fx = uv.x * (self.cfg.nx - 1) as f64;
        let fy = uv.y * (self.cfg.ny - 1) as f64;
        let i = (fx.floor() as usize).min(self.cfg.nx - 2);
        let j = (fy.floor() as usize).min(self.cfg.ny - 2);
        let tx = fx - i as f64;
        let ty = fy - j as f64;
        let v00 = self.velocity_at(i, j);
        let v10 = self.velocity_at(i + 1, j);
        let v01 = self.velocity_at(i, j + 1);
        let v11 = self.velocity_at(i + 1, j + 1);
        v00.lerp(v10, tx).lerp(v01.lerp(v11, tx), ty)
    }

    /// Advances the flow by `dt` (one explicit step with semi-Lagrangian
    /// advection and a pressure projection).
    pub fn step(&mut self, dt: f64) {
        let nx = self.cfg.nx;
        let ny = self.cfg.ny;
        let h = self.spacing();

        // 1. Semi-Lagrangian advection of both velocity components.
        let u_old = self.u.clone();
        let v_old = self.v.clone();
        let sample_old = |p: Vec2| -> Vec2 {
            let uv = self.cfg.domain.to_unit(self.cfg.domain.clamp(p));
            let fx = uv.x * (nx - 1) as f64;
            let fy = uv.y * (ny - 1) as f64;
            let i = (fx.floor() as usize).min(nx - 2);
            let j = (fy.floor() as usize).min(ny - 2);
            let tx = fx - i as f64;
            let ty = fy - j as f64;
            let at = |ii: usize, jj: usize| {
                let k = jj * nx + ii;
                Vec2::new(u_old[k], v_old[k])
            };
            at(i, j)
                .lerp(at(i + 1, j), tx)
                .lerp(at(i, j + 1).lerp(at(i + 1, j + 1), tx), ty)
        };
        for j in 0..ny {
            for i in 0..nx {
                let k = self.idx(i, j);
                if self.mask[k] {
                    continue;
                }
                let p = self.node_position(i, j);
                // RK2 backtrace along the old velocity field.
                let vel = Vec2::new(u_old[k], v_old[k]);
                let mid = p - vel * (0.5 * dt);
                let departure = p - sample_old(mid) * dt;
                let adv = sample_old(departure);
                self.u[k] = adv.x;
                self.v[k] = adv.y;
            }
        }

        // 2. Explicit viscosity.
        let nu = self.cfg.viscosity;
        if nu > 0.0 {
            let u_adv = self.u.clone();
            let v_adv = self.v.clone();
            for j in 1..ny - 1 {
                for i in 1..nx - 1 {
                    let k = self.idx(i, j);
                    if self.mask[k] {
                        continue;
                    }
                    let lap = |f: &[f64]| {
                        (f[k + 1] - 2.0 * f[k] + f[k - 1]) / (h.x * h.x)
                            + (f[k + nx] - 2.0 * f[k] + f[k - nx]) / (h.y * h.y)
                    };
                    self.u[k] = u_adv[k] + dt * nu * lap(&u_adv);
                    self.v[k] = v_adv[k] + dt * nu * lap(&v_adv);
                }
            }
        }

        self.enforce_boundaries();

        // 3. Pressure projection to (approximately) enforce incompressibility.
        let mut div = vec![0.0f64; nx * ny];
        for j in 1..ny - 1 {
            for i in 1..nx - 1 {
                let k = self.idx(i, j);
                if self.mask[k] {
                    continue;
                }
                div[k] = (self.u[k + 1] - self.u[k - 1]) / (2.0 * h.x)
                    + (self.v[k + nx] - self.v[k - nx]) / (2.0 * h.y);
            }
        }
        let mut p = vec![0.0f64; nx * ny];
        let hx2 = h.x * h.x;
        let hy2 = h.y * h.y;
        let denom = 2.0 * (hx2 + hy2);
        for _ in 0..self.cfg.pressure_iterations {
            let p_old = p.clone();
            for j in 1..ny - 1 {
                for i in 1..nx - 1 {
                    let k = self.idx(i, j);
                    if self.mask[k] {
                        continue;
                    }
                    // Solid or boundary neighbours mirror the centre value
                    // (homogeneous Neumann).
                    let pick = |kk: usize| if self.mask[kk] { p_old[k] } else { p_old[kk] };
                    p[k] = ((pick(k + 1) + pick(k - 1)) * hy2
                        + (pick(k + nx) + pick(k - nx)) * hx2
                        - div[k] * hx2 * hy2 / dt)
                        / denom;
                }
            }
        }
        for j in 1..ny - 1 {
            for i in 1..nx - 1 {
                let k = self.idx(i, j);
                if self.mask[k] {
                    continue;
                }
                let pick = |kk: usize| if self.mask[kk] { p[k] } else { p[kk] };
                self.u[k] -= dt * (pick(k + 1) - pick(k - 1)) / (2.0 * h.x);
                self.v[k] -= dt * (pick(k + nx) - pick(k - nx)) / (2.0 * h.y);
            }
        }

        self.enforce_boundaries();
        self.time += dt;
        self.steps += 1;
    }

    fn enforce_boundaries(&mut self) {
        let nx = self.cfg.nx;
        let ny = self.cfg.ny;
        // Left: prescribed inflow with a small time-dependent transverse
        // perturbation that seeds the wake instability.
        let perturb = self.cfg.perturbation * self.cfg.inflow * (self.time * 2.5).sin();
        for j in 0..ny {
            let k = self.idx(0, j);
            self.u[k] = self.cfg.inflow;
            self.v[k] = perturb * (std::f64::consts::PI * j as f64 / (ny - 1) as f64).sin();
        }
        // Right: zero-gradient outflow.
        for j in 0..ny {
            let k = self.idx(nx - 1, j);
            self.u[k] = self.u[k - 1];
            self.v[k] = self.v[k - 1];
        }
        // Top and bottom: free slip (no normal flow, zero tangential gradient).
        for i in 0..nx {
            let kb = self.idx(i, 0);
            let kt = self.idx(i, ny - 1);
            self.u[kb] = self.u[kb + nx];
            self.v[kb] = 0.0;
            self.u[kt] = self.u[kt - nx];
            self.v[kt] = 0.0;
        }
        // Solid block: no slip.
        for k in 0..self.mask.len() {
            if self.mask[k] {
                self.u[k] = 0.0;
                self.v[k] = 0.0;
            }
        }
    }

    /// Maximum divergence magnitude over the interior fluid nodes — a measure
    /// of how well the projection enforced incompressibility.
    pub fn max_divergence(&self) -> f64 {
        let nx = self.cfg.nx;
        let ny = self.cfg.ny;
        let h = self.spacing();
        let mut max = 0.0f64;
        for j in 1..ny - 1 {
            for i in 1..nx - 1 {
                let k = self.idx(i, j);
                if self.mask[k]
                    || self.mask[k + 1]
                    || self.mask[k - 1]
                    || self.mask[k + nx]
                    || self.mask[k - nx]
                {
                    continue;
                }
                let d = (self.u[k + 1] - self.u[k - 1]) / (2.0 * h.x)
                    + (self.v[k + nx] - self.v[k - nx]) / (2.0 * h.y);
                max = max.max(d.abs());
            }
        }
        max
    }

    /// Standard deviation of the transverse velocity in the wake region — a
    /// simple indicator of vortex shedding (zero for steady symmetric flow).
    pub fn wake_fluctuation(&self) -> f64 {
        let wake_x0 = self.block.rect.max.x;
        let wake_x1 = self.cfg.domain.max.x;
        let mut values = Vec::new();
        for j in 0..self.cfg.ny {
            for i in 0..self.cfg.nx {
                let p = self.node_position(i, j);
                if p.x > wake_x0 && p.x < wake_x1 && !self.mask[self.idx(i, j)] {
                    values.push(self.v[self.idx(i, j)]);
                }
            }
        }
        if values.is_empty() {
            return 0.0;
        }
        let mean: f64 = values.iter().sum::<f64>() / values.len() as f64;
        (values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64).sqrt()
    }

    /// Samples the current velocity field onto a regular grid (used for
    /// storing browser frames).
    pub fn velocity_grid(&self) -> RegularGrid {
        RegularGrid::from_fn(self.cfg.nx, self.cfg.ny, self.cfg.domain, |p| {
            self.sample(p)
        })
    }

    /// Samples the current velocity onto the paper's rectilinear slice grid,
    /// with node clustering toward the block (non-uniform spacing as in the
    /// original data set).
    pub fn rectilinear_slice(&self) -> RectilinearGrid {
        let focus = self.cfg.domain.to_unit(self.block.rect.center());
        let mut grid =
            RectilinearGrid::stretched(self.cfg.nx, self.cfg.ny, self.cfg.domain, focus, 0.6);
        grid.fill_with(|p| self.sample(p));
        grid
    }
}

impl VectorField for DnsSolver {
    fn velocity(&self, p: Vec2) -> Vec2 {
        self.sample(p)
    }
    fn domain(&self) -> Rect {
        self.cfg.domain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(steps: usize) -> DnsSolver {
        let mut s = DnsSolver::new(DnsConfig::small_test());
        for _ in 0..steps {
            s.step(0.02);
        }
        s
    }

    #[test]
    fn initial_state_respects_boundaries() {
        let s = DnsSolver::new(DnsConfig::small_test());
        // Inflow on the left.
        assert!((s.velocity_at(0, 10).x - 1.0).abs() < 1e-9);
        // No slip inside the block.
        let c = s.block().rect.center();
        assert_eq!(s.sample(c), Vec2::ZERO);
        // Free slip on the walls: zero transverse velocity.
        assert_eq!(s.velocity_at(10, 0).y, 0.0);
    }

    #[test]
    fn velocities_remain_finite_and_bounded() {
        let s = run(100);
        let max = (0..s.cfg.ny)
            .flat_map(|j| (0..s.cfg.nx).map(move |i| (i, j)))
            .map(|(i, j)| s.velocity_at(i, j).norm())
            .fold(0.0f64, f64::max);
        assert!(max.is_finite());
        assert!(max < 10.0 * s.cfg.inflow, "runaway velocity {max}");
    }

    #[test]
    fn projection_keeps_divergence_small() {
        let s = run(30);
        let max_div = s.max_divergence();
        // Relative to inflow/h this should be small (Jacobi is approximate).
        let h = s.spacing().x.min(s.spacing().y);
        assert!(
            max_div * h / s.cfg.inflow < 0.2,
            "divergence too large: {max_div}"
        );
    }

    #[test]
    fn mean_flow_moves_downstream() {
        let s = run(80);
        // Average u over the fluid region is positive and of the order of the
        // inflow velocity.
        let mut sum = 0.0;
        let mut count = 0;
        for j in 0..s.cfg.ny {
            for i in 0..s.cfg.nx {
                if !s.mask[s.idx(i, j)] {
                    sum += s.velocity_at(i, j).x;
                    count += 1;
                }
            }
        }
        let mean_u = sum / count as f64;
        assert!(mean_u > 0.3 * s.cfg.inflow, "mean u = {mean_u}");
    }

    #[test]
    fn block_blocks_the_flow() {
        let s = run(60);
        // Immediately behind the block the streamwise velocity is much lower
        // than the free stream above it.
        let behind = s.sample(s.block().rect.center() + Vec2::new(0.5, 0.0));
        let above = s.sample(Vec2::new(
            s.block().rect.center().x,
            s.cfg.domain.max.y * 0.9,
        ));
        assert!(behind.x < above.x, "behind {behind:?}, above {above:?}");
    }

    #[test]
    fn wake_develops_fluctuations() {
        let early = run(5);
        let late = run(250);
        assert!(
            late.wake_fluctuation() > early.wake_fluctuation(),
            "wake fluctuation did not grow: early {} late {}",
            early.wake_fluctuation(),
            late.wake_fluctuation()
        );
        assert!(late.wake_fluctuation() > 1e-3);
    }

    #[test]
    fn rectilinear_slice_matches_paper_shape() {
        let s = DnsSolver::new(DnsConfig::small_test());
        let slice = s.rectilinear_slice();
        assert_eq!(slice.nx(), s.cfg.nx);
        assert_eq!(slice.ny(), s.cfg.ny);
        // Block region is zero velocity in the slice too.
        let c = s.block().rect.center();
        assert!(slice.interpolate(c).norm() < 0.2 * s.cfg.inflow);
    }

    #[test]
    fn paper_resolution_config() {
        let cfg = DnsConfig::paper_resolution();
        assert_eq!(cfg.nx, 278);
        assert_eq!(cfg.ny, 208);
    }

    #[test]
    fn time_and_steps_advance() {
        let s = run(7);
        assert_eq!(s.steps(), 7);
        assert!((s.time() - 0.14).abs() < 1e-12);
    }
}
