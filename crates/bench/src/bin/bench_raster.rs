//! Rasterizer before/after benchmark: times the naive per-pixel reference
//! path against the span-walking fast path on representative spot workloads
//! (plus the spot-batch-size sweep of the full divide-and-conquer synthesis)
//! and writes the results to `BENCH_raster.json`.
//!
//! ```text
//! cargo run --release -p spotnoise-bench --bin bench_raster -- \
//!     [--out BENCH_raster.json] [--check] [--filter <substring>] \
//!     [--ratchet <committed BENCH_raster.json>] [--threads 1,2,4]
//! ```
//!
//! `--check` re-reads the written artifact, parses it and asserts the
//! schema plus `speedup > 0` for every case — the CI smoke step. A failed
//! check exits non-zero. `--filter` measures only the cases whose name
//! contains one of the comma-separated substrings (excluded cases are
//! skipped entirely, not just omitted from the output), which is how CI
//! keeps the smoke run clear of the slow full-synthesis `dnc_spot_batch_*`
//! cases while still covering quads, meshes and the gather.
//!
//! `--ratchet` points `--check` at a previously committed artifact: every
//! measured case that also appears in the ratchet file must keep at least
//! 90 % of its committed speedup, so a future change cannot silently lose
//! an optimization this repository has already banked. Speedups are
//! within-run ratios (reference vs optimized on the same host), so the
//! comparison is robust to absolute machine speed. Committed cases the
//! fresh (possibly filtered) run did not measure are ignored — but a fresh
//! case **missing from the committed artifact fails the ratchet** (listing
//! every unbanked name): a newly added case (or a typo'd rename) would
//! otherwise never be gated. Pass `--allow-new` to accept unbanked cases
//! while iterating locally; CI runs without it, so new cases must be
//! banked into the committed artifact in the same PR.
//!
//! The ratchet also refuses to compare across SIMD dispatch levels: the
//! artifact records the level its kernels ran at (`"simd"`), and numbers
//! banked under `avx2` are meaningless floors for a `SPOTNOISE_SIMD=off`
//! run (and vice versa — a scalar bank would let an AVX2 regression hide).
//! A committed artifact predating the `simd` field must be regenerated.
//!
//! `--threads 1,2,4` switches to sweep mode: the whole case list runs once
//! per listed worker count and the artifact becomes one
//! `bench_raster_sweep/v1` document with a `runs` array (one
//! `bench_raster/v1` section per count). Sweep artifacts are measurement
//! data, not regression banks, so `--threads` excludes `--ratchet`;
//! `--check` still validates every section.

use spotnoise_bench::json::Json;
use std::path::PathBuf;
use std::process::ExitCode;

/// Fraction of a committed case's speedup a fresh measurement must retain
/// for the ratchet to pass (headroom for shared-runner noise; the measured
/// quantity is a within-run ratio, so host speed itself cancels out).
const RATCHET_FLOOR: f64 = 0.9;

/// Absolute slack subtracted from the banked speedup as an alternative
/// floor: the effective floor is `min(banked × RATCHET_FLOOR, banked −
/// RATCHET_SLACK)`. For big banked wins the ratio rules (2.4× may not drop
/// below 2.16×); for near-parity cases — whose entire margin is
/// allocator/toolchain behaviour — the ratio alone would leave almost no
/// headroom (banked 1.12× would fail at 1.01×), so the absolute slack keeps
/// the gate on genuine pessimization instead of environment drift.
const RATCHET_SLACK: f64 = 0.15;

/// One parsed `bench_raster/v1` document (or sweep section): the dispatch
/// metadata plus `(name, speedup)` pairs.
struct ParsedRun {
    /// Recorded SIMD dispatch level; `None` for artifacts written before
    /// the field existed.
    simd: Option<String>,
    /// `(case name, speedup)` pairs.
    cases: Vec<(String, f64)>,
}

/// Validates one `bench_raster/v1` envelope and extracts its run.
fn parse_run(doc: &Json) -> Result<ParsedRun, String> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing schema field")?;
    if schema != "bench_raster/v1" {
        return Err(format!("unexpected schema {schema:?}"));
    }
    let threads = doc
        .get("threads")
        .and_then(Json::as_f64)
        .ok_or("missing threads field")?;
    if threads < 1.0 {
        return Err(format!("implausible thread count {threads}"));
    }
    let simd = doc.get("simd").and_then(Json::as_str).map(str::to_string);
    let cases = doc
        .get("cases")
        .and_then(Json::as_array)
        .ok_or("missing cases array")?;
    let mut out = Vec::with_capacity(cases.len());
    for case in cases {
        let name = case
            .get("name")
            .and_then(Json::as_str)
            .ok_or("case without a name")?;
        let speedup = case
            .get("speedup")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("case {name}: missing speedup"))?;
        out.push((name.to_string(), speedup));
    }
    Ok(ParsedRun { simd, cases: out })
}

/// Parses a single-run artifact from disk.
fn parse_artifact(path: &PathBuf) -> Result<ParsedRun, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path:?}: {e}"))?;
    parse_run(&Json::parse(&text)?)
}

/// Validates one run's cases: non-empty, every speedup positive.
fn check_run(run: &ParsedRun) -> Result<usize, String> {
    if run.cases.is_empty() {
        return Err("no benchmark cases recorded".to_string());
    }
    for (name, speedup) in &run.cases {
        if speedup.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(format!("case {name}: speedup {speedup} is not positive"));
        }
    }
    Ok(run.cases.len())
}

/// Validates the written single-run artifact: it must parse, carry the
/// expected schema, and every case must report a positive speedup.
fn check_artifact(path: &PathBuf) -> Result<usize, String> {
    check_run(&parse_artifact(path)?)
}

/// Validates a written `bench_raster_sweep/v1` artifact: the envelope, the
/// expected number of runs, and every section's cases. Returns the total
/// case count across all runs.
fn check_sweep_artifact(path: &PathBuf, expected_runs: usize) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path:?}: {e}"))?;
    let doc = Json::parse(&text)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing schema field")?;
    if schema != "bench_raster_sweep/v1" {
        return Err(format!("unexpected schema {schema:?}"));
    }
    let runs = doc
        .get("runs")
        .and_then(Json::as_array)
        .ok_or("missing runs array")?;
    if runs.len() != expected_runs {
        return Err(format!(
            "expected {expected_runs} sweep runs, artifact has {}",
            runs.len()
        ));
    }
    let mut total = 0;
    for (i, run) in runs.iter().enumerate() {
        total += check_run(&parse_run(run).map_err(|e| format!("run {i}: {e}"))?)
            .map_err(|e| format!("run {i}: {e}"))?;
    }
    Ok(total)
}

/// The regression ratchet: every freshly measured case that also exists in
/// the committed artifact must retain at least [`RATCHET_FLOOR`] of its
/// committed speedup, and — unless `allow_new` is set — every fresh case
/// must exist in the committed artifact at all (an unbanked case is one the
/// ratchet would silently never gate, which is exactly how a typo'd rename
/// slips a banked win out of CI). Returns the number of cases compared.
fn check_ratchet(fresh: &PathBuf, committed: &PathBuf, allow_new: bool) -> Result<usize, String> {
    let fresh_run = parse_artifact(fresh)?;
    let committed_run = parse_artifact(committed)?;
    // Speedups measured under different kernels are not comparable: a bank
    // recorded at avx2 is not a floor for a scalar-forced run, and a scalar
    // bank would wave an avx2 regression through. Refuse loudly instead of
    // reporting phantom (or phantom-free) regressions.
    let fresh_simd = fresh_run.simd.as_deref().unwrap_or("unknown");
    match committed_run.simd.as_deref() {
        None => {
            return Err(format!(
                "committed artifact {} records no SIMD dispatch level (it predates the \
                 'simd' field) — regenerate it with the current bench_raster and commit \
                 the result",
                committed.display()
            ));
        }
        Some(banked_simd) if banked_simd != fresh_simd => {
            return Err(format!(
                "dispatch level mismatch: fresh run executed at '{fresh_simd}' but {} was \
                 banked at '{banked_simd}' — speedups are not comparable across dispatch \
                 levels; ratchet against an artifact banked at the same level (CI keeps \
                 one per leg, e.g. BENCH_raster_scalar.json for SPOTNOISE_SIMD=off)",
                committed.display()
            ));
        }
        Some(_) => {}
    }
    let fresh_cases = fresh_run.cases;
    let committed_cases = committed_run.cases;
    let mut compared = 0;
    let mut failures = Vec::new();
    let mut unbanked = Vec::new();
    for (name, measured) in &fresh_cases {
        let Some((_, banked)) = committed_cases.iter().find(|(n, _)| n == name) else {
            unbanked.push(name.clone());
            continue;
        };
        compared += 1;
        let floor = (banked * RATCHET_FLOOR).min(banked - RATCHET_SLACK);
        if *measured < floor {
            failures.push(format!(
                "case {name}: speedup {measured:.3} fell below {floor:.3} \
                 (= min({RATCHET_FLOOR} x, -{RATCHET_SLACK}) of committed {banked:.3})"
            ));
        }
    }
    if !unbanked.is_empty() && !allow_new {
        failures.push(format!(
            "unbanked case(s) not present in {}: {} — regenerate and commit \
             the artifact (or pass --allow-new while iterating)",
            committed.display(),
            unbanked.join(", ")
        ));
    }
    if compared == 0 && unbanked.is_empty() {
        return Err(format!(
            "ratchet {committed:?} shares no case with the fresh run — wrong file?"
        ));
    }
    if failures.is_empty() {
        Ok(compared)
    } else {
        Err(failures.join("\n"))
    }
}

fn main() -> ExitCode {
    let mut out = PathBuf::from("BENCH_raster.json");
    let mut check = false;
    let mut filter: Option<String> = None;
    let mut ratchet: Option<PathBuf> = None;
    let mut allow_new = false;
    let mut threads: Option<Vec<usize>> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                if let Some(path) = args.next() {
                    out = PathBuf::from(path);
                }
            }
            "--check" => check = true,
            "--allow-new" => allow_new = true,
            "--filter" => match args.next() {
                Some(substring) => filter = Some(substring),
                None => {
                    eprintln!("--filter needs a substring");
                    return ExitCode::FAILURE;
                }
            },
            "--ratchet" => match args.next() {
                Some(path) => ratchet = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--ratchet needs a path to a committed BENCH_raster.json");
                    return ExitCode::FAILURE;
                }
            },
            "--threads" => match args.next().map(|list| {
                list.split(',')
                    .map(|n| n.trim().parse::<usize>())
                    .collect::<Result<Vec<usize>, _>>()
            }) {
                Some(Ok(counts)) if !counts.is_empty() && counts.iter().all(|&n| n >= 1) => {
                    threads = Some(counts);
                }
                _ => {
                    eprintln!("--threads needs a comma-separated list of counts >= 1, e.g. 1,2,4");
                    return ExitCode::FAILURE;
                }
            },
            other => eprintln!("unknown argument: {other}"),
        }
    }
    // The ratchet is a --check extension; a bare --ratchet would silently
    // verify nothing, so reject it up front.
    if ratchet.is_some() && !check {
        eprintln!("--ratchet requires --check (the ratchet runs as part of the check phase)");
        return ExitCode::FAILURE;
    }
    // A sweep artifact is measurement data across worker counts, not a
    // regression bank — there is no single speedup per case to ratchet.
    if threads.is_some() && ratchet.is_some() {
        eprintln!("--threads sweeps cannot be ratcheted; run them without --ratchet");
        return ExitCode::FAILURE;
    }
    // Fail on an unwritable destination before spending minutes measuring.
    if let Some(parent) = out.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).expect("cannot create output directory");
    }
    if let Some(f) = &filter {
        println!("measuring only cases containing {f:?}");
    }
    if let Some(counts) = &threads {
        // Sweep mode: the whole case list once per worker count, one report
        // section each. The override is cleared afterwards even though the
        // process is about to exit — the invariant is cheap to keep.
        let mut reports = Vec::with_capacity(counts.len());
        for &n in counts {
            rayon::set_current_num_threads(n);
            println!("--- sweep: {n} worker thread(s) ---");
            let report =
                spotnoise_bench::raster_bench::run_raster_bench_filtered(filter.as_deref());
            if report.cases.is_empty() {
                rayon::set_current_num_threads(0);
                eprintln!("filter matched no benchmark case");
                return ExitCode::FAILURE;
            }
            println!("{}", spotnoise_bench::raster_bench::format_report(&report));
            reports.push(report);
        }
        rayon::set_current_num_threads(0);
        std::fs::write(&out, spotnoise_bench::raster_bench::sweep_to_json(&reports))
            .expect("write sweep artifact");
        println!("wrote {}", out.display());
        if check {
            match check_sweep_artifact(&out, reports.len()) {
                Ok(cases) => {
                    println!(
                        "check OK: {} runs, {cases} cases total, schema valid, every speedup > 0",
                        reports.len()
                    );
                }
                Err(e) => {
                    eprintln!("check FAILED: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        return ExitCode::SUCCESS;
    }
    let report = spotnoise_bench::raster_bench::run_raster_bench_filtered(filter.as_deref());
    if report.cases.is_empty() {
        eprintln!("filter matched no benchmark case");
        return ExitCode::FAILURE;
    }
    println!("{}", spotnoise_bench::raster_bench::format_report(&report));
    std::fs::write(&out, spotnoise_bench::raster_bench::report_to_json(&report))
        .expect("write BENCH_raster.json");
    println!("wrote {}", out.display());
    if check {
        match check_artifact(&out) {
            Ok(cases) => {
                println!("check OK: {cases} cases, schema valid, every speedup > 0");
            }
            Err(e) => {
                eprintln!("check FAILED: {e}");
                return ExitCode::FAILURE;
            }
        }
        if let Some(committed) = &ratchet {
            match check_ratchet(&out, committed, allow_new) {
                Ok(compared) => {
                    println!(
                        "ratchet OK: {compared} cases at >= {RATCHET_FLOOR}x their committed \
                         speedup in {}",
                        committed.display()
                    );
                }
                Err(e) => {
                    eprintln!("ratchet FAILED against {}:\n{e}", committed.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    ExitCode::SUCCESS
}
