//! Fragment blending modes.
//!
//! Spot noise relies on *additive* blending of spot intensities into the
//! texture (the sum in `f(x) = Σ aᵢ h(x−xᵢ)`). The OpenGL-style state
//! machine also supports the other modes a graphics pipe provides, which the
//! presentation layer uses when compositing overlays.

use serde::{Deserialize, Serialize};

/// How an incoming fragment value is combined with the value already stored
/// in the target texture.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlendMode {
    /// Destination is replaced by the source.
    Replace,
    /// Source is added to the destination (the spot-noise accumulation mode).
    #[default]
    Additive,
    /// Destination keeps the maximum of source and destination.
    Max,
    /// Classic alpha blending `dst = src * alpha + dst * (1 - alpha)`, with
    /// the constant alpha stored in the mode.
    Alpha(AlphaFactor),
}

/// A blend factor in `[0, 1]`, wrapped so that `BlendMode` stays `Eq` and
/// hashable while still carrying a floating-point alpha.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlphaFactor(u16);

impl AlphaFactor {
    /// Creates an alpha factor from a float in `[0, 1]` (clamped).
    pub fn new(alpha: f32) -> Self {
        AlphaFactor((alpha.clamp(0.0, 1.0) * u16::MAX as f32).round() as u16)
    }

    /// The alpha value as a float in `[0, 1]`.
    pub fn value(self) -> f32 {
        self.0 as f32 / u16::MAX as f32
    }
}

impl BlendMode {
    /// Applies the blend equation for a single fragment.
    #[inline]
    pub fn apply(self, dst: f32, src: f32) -> f32 {
        match self {
            BlendMode::Replace => src,
            BlendMode::Additive => dst + src,
            BlendMode::Max => dst.max(src),
            BlendMode::Alpha(a) => {
                let alpha = a.value();
                src * alpha + dst * (1.0 - alpha)
            }
        }
    }

    /// True for modes where the order in which fragments arrive does not
    /// change the final value (up to floating-point rounding). Divide and
    /// conquer relies on this property of the additive mode: partial textures
    /// can be generated independently and blended in any order.
    pub fn is_order_independent(self) -> bool {
        matches!(self, BlendMode::Additive | BlendMode::Max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replace_ignores_destination() {
        assert_eq!(BlendMode::Replace.apply(5.0, 2.0), 2.0);
    }

    #[test]
    fn additive_sums() {
        assert_eq!(BlendMode::Additive.apply(1.0, 2.5), 3.5);
        assert_eq!(BlendMode::Additive.apply(-1.0, 1.0), 0.0);
    }

    #[test]
    fn max_keeps_larger() {
        assert_eq!(BlendMode::Max.apply(1.0, 2.5), 2.5);
        assert_eq!(BlendMode::Max.apply(3.0, 2.5), 3.0);
    }

    #[test]
    fn alpha_interpolates() {
        let half = BlendMode::Alpha(AlphaFactor::new(0.5));
        assert!((half.apply(0.0, 1.0) - 0.5).abs() < 1e-3);
        let opaque = BlendMode::Alpha(AlphaFactor::new(1.0));
        assert!((opaque.apply(0.0, 1.0) - 1.0).abs() < 1e-3);
        let clear = BlendMode::Alpha(AlphaFactor::new(0.0));
        assert!((clear.apply(0.25, 1.0) - 0.25).abs() < 1e-3);
    }

    #[test]
    fn alpha_factor_clamps_input() {
        assert_eq!(AlphaFactor::new(2.0).value(), 1.0);
        assert_eq!(AlphaFactor::new(-1.0).value(), 0.0);
    }

    #[test]
    fn order_independence_classification() {
        assert!(BlendMode::Additive.is_order_independent());
        assert!(BlendMode::Max.is_order_independent());
        assert!(!BlendMode::Replace.is_order_independent());
        assert!(!BlendMode::Alpha(AlphaFactor::new(0.5)).is_order_independent());
    }

    #[test]
    fn additive_is_commutative_and_associative() {
        let vals = [0.3f32, 1.7, -0.4, 2.2];
        let forward = vals
            .iter()
            .fold(0.0, |acc, &v| BlendMode::Additive.apply(acc, v));
        let backward = vals
            .iter()
            .rev()
            .fold(0.0, |acc, &v| BlendMode::Additive.apply(acc, v));
        assert!((forward - backward).abs() < 1e-6);
    }
}
