//! Host-to-graphics bus accounting.
//!
//! One of the paper's explicit observations (section 5.1) is that the bus is
//! *not* the bottleneck: at 5.6 textures/second the vertex traffic is about
//! 116 MByte/s against an 800 MByte/s bus. This module tracks the bytes that
//! cross the bus (vertex streams toward the pipes, partial textures back for
//! the gather step) so the harness can reproduce that observation. One
//! tracker is shared by all process groups of a scheduler-engine run;
//! backends that bypass the graphics subsystem (the CPU-only executor)
//! record nothing, so their uniform reports show zero bus traffic.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Categories of bus traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Traffic {
    /// Vertex data streamed from processors to a pipe.
    Vertices,
    /// Texture data moved between pipes and host memory (gather/readback).
    Textures,
    /// Data-set reads (pipeline step 1).
    DataSet,
}

/// A snapshot of the accumulated traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusStats {
    /// Bytes of vertex traffic.
    pub vertex_bytes: u64,
    /// Bytes of texture traffic.
    pub texture_bytes: u64,
    /// Bytes of data-set traffic.
    pub dataset_bytes: u64,
    /// Number of individual transfers recorded.
    pub transfers: u64,
}

impl BusStats {
    /// Total bytes across all categories.
    pub fn total_bytes(&self) -> u64 {
        self.vertex_bytes + self.texture_bytes + self.dataset_bytes
    }

    /// Average bandwidth in bytes/second over a wall-clock or simulated
    /// interval of `seconds`.
    pub fn bandwidth(&self, seconds: f64) -> f64 {
        if seconds <= 0.0 {
            0.0
        } else {
            self.total_bytes() as f64 / seconds
        }
    }

    /// Fraction of the given bus capacity (bytes/second) that the recorded
    /// traffic would occupy over `seconds`.
    pub fn utilization(&self, seconds: f64, capacity_bytes_per_second: f64) -> f64 {
        if capacity_bytes_per_second <= 0.0 {
            return 0.0;
        }
        self.bandwidth(seconds) / capacity_bytes_per_second
    }
}

/// A thread-safe bus traffic recorder shared by all process groups.
#[derive(Debug, Clone, Default)]
pub struct BusTracker {
    inner: Arc<Mutex<BusStats>>,
}

impl BusTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        BusTracker::default()
    }

    /// Records a transfer of `bytes` in the given traffic category.
    pub fn record(&self, traffic: Traffic, bytes: u64) {
        let mut s = self.inner.lock();
        match traffic {
            Traffic::Vertices => s.vertex_bytes += bytes,
            Traffic::Textures => s.texture_bytes += bytes,
            Traffic::DataSet => s.dataset_bytes += bytes,
        }
        s.transfers += 1;
    }

    /// Returns a snapshot of the counters.
    pub fn snapshot(&self) -> BusStats {
        *self.inner.lock()
    }

    /// Clears all counters.
    pub fn reset(&self) {
        *self.inner.lock() = BusStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_by_category() {
        let bus = BusTracker::new();
        bus.record(Traffic::Vertices, 1000);
        bus.record(Traffic::Textures, 500);
        bus.record(Traffic::DataSet, 250);
        bus.record(Traffic::Vertices, 1000);
        let s = bus.snapshot();
        assert_eq!(s.vertex_bytes, 2000);
        assert_eq!(s.texture_bytes, 500);
        assert_eq!(s.dataset_bytes, 250);
        assert_eq!(s.transfers, 4);
        assert_eq!(s.total_bytes(), 2750);
    }

    #[test]
    fn bandwidth_and_utilization() {
        let s = BusStats {
            vertex_bytes: 116_000_000,
            ..Default::default()
        };
        assert!((s.bandwidth(1.0) - 116.0e6).abs() < 1.0);
        let u = s.utilization(1.0, 800.0e6);
        assert!((u - 0.145).abs() < 0.01);
        assert_eq!(s.bandwidth(0.0), 0.0);
        assert_eq!(s.utilization(1.0, 0.0), 0.0);
    }

    #[test]
    fn reset_clears_counters() {
        let bus = BusTracker::new();
        bus.record(Traffic::Vertices, 10);
        bus.reset();
        assert_eq!(bus.snapshot().total_bytes(), 0);
    }

    #[test]
    fn tracker_is_shared_between_clones() {
        let bus = BusTracker::new();
        let other = bus.clone();
        other.record(Traffic::Textures, 42);
        assert_eq!(bus.snapshot().texture_bytes, 42);
    }

    #[test]
    fn tracker_usable_from_threads() {
        let bus = BusTracker::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let b = bus.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        b.record(Traffic::Vertices, 16);
                    }
                });
            }
        });
        assert_eq!(bus.snapshot().vertex_bytes, 4 * 100 * 16);
    }
}
