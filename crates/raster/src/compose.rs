//! Gathering and blending partial textures.
//!
//! After each process group finishes its particle set, the per-pipe partial
//! textures are gathered and blended into the final spot-noise texture. This
//! is the *sequential* step of the divide-and-conquer algorithm — the `c`
//! term of equation 3.2 — and it is what prevents perfectly linear speedups
//! in the paper's tables. Two composition strategies are provided, matching
//! the two partitioning strategies of the implementation section:
//!
//! * additive gathering — partial textures cover the whole target and are
//!   summed texel by texel (pure spot-set partitioning), and
//! * tile composition — each partial texture only owns a pixel region of the
//!   target (texture tiling) and regions are copied into place.
//!
//! Both are implemented on [`StreamingGather`], which accepts partials one at
//! a time: the scheduler engine feeds it through a channel as process groups
//! finish, so blending overlaps with the straggling groups instead of
//! waiting for a barrier. Additive folding is performed *in slot order* (a
//! partial that arrives early is parked until its predecessors have been
//! folded), which keeps the result bit-identical to the classic sequential
//! `p0 + p1 + ... + pn` accumulation no matter the arrival order; tile
//! regions are disjoint, so tiles are copied the moment they arrive.
//!
//! When several consecutive slots are ready at once — an arrival that
//! unlocks a parked run, or the all-at-once [`gather_additive`] wrapper —
//! the whole run is folded in **one destination pass**: each destination
//! chunk is loaded once and every ready partial is accumulated into it while
//! it is cache-hot, instead of streaming the full-size destination through
//! memory once per partial. Per-texel accumulation order is unchanged
//! (sources are applied in slot order within the chunk), so the fused fold
//! stays bit-identical to the one-at-a-time fold; a straggler still folds
//! alone the moment it arrives, preserving the overlap.
//!
//! Although the `c` term stays *sequential in the performance model* (the
//! simulated Onyx2 charges it at full blend cost, exactly as eq. 3.2
//! prescribes), the host implementation parallelizes the texel work over row
//! chunks with rayon: every output row is owned by exactly one task, and the
//! per-texel accumulation order over the partials is unchanged, so the
//! result is bit-identical to the sequential loop. Small textures collapse
//! to a single chunk, which the rayon shim runs inline on the calling
//! thread — there is no separate sequential code path.

use crate::arena::FrameArena;
use crate::texture::Texture;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Rows per parallel task when composing textures.
const COMPOSE_ROW_CHUNK: usize = 32;

/// Below this texel count the whole texture becomes one chunk (processed on
/// the calling thread); spawning workers costs more than the memory traffic
/// saves.
const PARALLEL_COMPOSE_MIN_TEXELS: usize = 64 * 1024;

/// Chunk length (in texels) used when splitting compose work over threads.
/// A sub-threshold texture yields a single chunk, which runs inline.
fn compose_chunk_len(width: usize, height: usize) -> usize {
    let texels = width * height;
    if texels < PARALLEL_COMPOSE_MIN_TEXELS {
        texels.max(1)
    } else {
        width * COMPOSE_ROW_CHUNK
    }
}

/// A pixel-space tile: the half-open region `[x0, x1) x [y0, y1)` of the
/// final texture owned by one process group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PixelTile {
    /// Left edge (inclusive).
    pub x0: usize,
    /// Bottom edge (inclusive).
    pub y0: usize,
    /// Right edge (exclusive).
    pub x1: usize,
    /// Top edge (exclusive).
    pub y1: usize,
}

impl PixelTile {
    /// Number of texels in the tile.
    pub fn area(&self) -> usize {
        self.x1.saturating_sub(self.x0) * self.y1.saturating_sub(self.y0)
    }

    /// True when the pixel `(x, y)` lies inside the tile.
    pub fn contains(&self, x: usize, y: usize) -> bool {
        x >= self.x0 && x < self.x1 && y >= self.y0 && y < self.y1
    }

    /// Splits a `width` x `height` texture into an `nx` x `ny` grid of tiles
    /// covering every texel exactly once.
    pub fn grid(width: usize, height: usize, nx: usize, ny: usize) -> Vec<PixelTile> {
        assert!(nx > 0 && ny > 0, "tile grid must be non-empty");
        let mut out = Vec::with_capacity(nx * ny);
        for j in 0..ny {
            for i in 0..nx {
                out.push(PixelTile {
                    x0: width * i / nx,
                    y0: height * j / ny,
                    x1: width * (i + 1) / nx,
                    y1: height * (j + 1) / ny,
                });
            }
        }
        out
    }
}

/// Result of a composition: the final texture plus the number of texels that
/// had to be blended or copied (the work the cost model charges as the
/// sequential `c` term).
#[derive(Debug, Clone)]
pub struct ComposeResult {
    /// The composed final texture.
    pub texture: Texture,
    /// Texels processed during composition.
    pub blend_texels: u64,
}

/// How the partial textures map onto the final texture.
#[derive(Debug, Clone)]
enum GatherMode {
    /// Every partial covers the whole target; partials are folded additively
    /// in slot order.
    Additive,
    /// Partial `i` owns the pixel region `tiles[i]` of the target.
    Tiles(Vec<PixelTile>),
}

/// Incremental gather/compose of partial textures.
///
/// Create one with [`StreamingGather::additive`] or
/// [`StreamingGather::tiles`], [`push`](StreamingGather::push) each partial
/// as it becomes available (in any order), and [`finish`]
/// (StreamingGather::finish) once every slot has arrived. The scheduler
/// engine drives this from a channel so composition overlaps with
/// still-running process groups; [`gather_additive`] and [`compose_tiles`]
/// are the all-at-once convenience wrappers.
///
/// With [`with_arena`](StreamingGather::with_arena) the gather recycles
/// every partial it consumed through [`push_owned`]
/// (StreamingGather::push_owned) back into the pool the moment it has been
/// folded or blitted — the return half of the engine's zero-alloc frame
/// loop.
#[derive(Debug)]
pub struct StreamingGather<'a> {
    mode: GatherMode,
    texture: Texture,
    blend_texels: u64,
    /// Number of slots that must arrive before `finish`.
    expected: usize,
    /// Per-tile arrival flags (tiles mode only; empty for additive).
    tile_seen: Vec<bool>,
    /// Next slot index the additive fold is waiting for.
    next: usize,
    /// Additive partials that arrived ahead of their fold turn.
    parked: BTreeMap<usize, Texture>,
    /// Total slots pushed so far.
    received: usize,
    /// Pool that receives consumed owned partials.
    arena: Option<&'a FrameArena>,
}

impl<'a> StreamingGather<'a> {
    /// Starts an additive gather over `slots` full-coverage partials of the
    /// given size. Slot indices passed to `push` determine the fold order;
    /// `finish` verifies all `slots` arrived.
    pub fn additive(width: usize, height: usize, slots: usize) -> Self {
        StreamingGather::additive_into(Texture::new(width, height), slots)
    }

    /// Like [`StreamingGather::additive`], composing into a caller-supplied
    /// target (e.g. one checked out of a [`FrameArena`]). With at least one
    /// slot the target's prior contents are irrelevant — the first fold is a
    /// wholesale copy — so a dirty pooled texture is fine; with zero slots
    /// `finish` returns the target unchanged.
    pub fn additive_into(target: Texture, slots: usize) -> Self {
        StreamingGather {
            mode: GatherMode::Additive,
            texture: target,
            blend_texels: 0,
            expected: slots,
            tile_seen: Vec::new(),
            next: 0,
            parked: BTreeMap::new(),
            received: 0,
            arena: None,
        }
    }

    /// Starts a tile composition: slot `i` owns the pixel region `tiles[i]`.
    /// Tiles must not overlap; texels not covered by any tile remain zero.
    /// `finish` verifies one partial arrived per tile.
    pub fn tiles(width: usize, height: usize, tiles: Vec<PixelTile>) -> Self {
        StreamingGather::tiles_into(Texture::new(width, height), tiles)
    }

    /// Like [`StreamingGather::tiles`], composing into a caller-supplied
    /// target. The target must be **zeroed** (the [`Texture::new`]
    /// contract): texels not covered by any tile are returned as-is.
    pub fn tiles_into(target: Texture, tiles: Vec<PixelTile>) -> Self {
        let expected = tiles.len();
        StreamingGather {
            mode: GatherMode::Tiles(tiles),
            texture: target,
            blend_texels: 0,
            expected,
            tile_seen: vec![false; expected],
            next: 0,
            parked: BTreeMap::new(),
            received: 0,
            arena: None,
        }
    }

    /// Recycles consumed owned partials into `arena` instead of dropping
    /// them (borrowed partials pushed via [`push`](StreamingGather::push)
    /// are never recycled).
    pub fn with_arena(mut self, arena: &'a FrameArena) -> Self {
        self.arena = Some(arena);
        self
    }

    /// Feeds the partial texture for `slot`. Tile partials are copied into
    /// place immediately; additive partials are folded as soon as every
    /// lower slot has been folded (early arrivals are parked, and the whole
    /// unlocked run folds in one destination pass).
    ///
    /// # Panics
    /// Panics when the partial's size disagrees with the target, the slot is
    /// out of range (tiles) or pushed twice (additive).
    pub fn push(&mut self, slot: usize, partial: &Texture) {
        if self.needs_parking(slot) {
            self.park(slot, partial.clone());
        } else {
            self.push_ready(slot, partial);
        }
    }

    /// Like [`push`](StreamingGather::push), but taking ownership of the
    /// partial — an out-of-order additive arrival is parked without cloning
    /// it, and a consumed partial's buffer is recycled when an arena is
    /// attached. This is what the scheduler engine calls with the textures
    /// it receives over the gather channel.
    pub fn push_owned(&mut self, slot: usize, partial: Texture) {
        if self.needs_parking(slot) {
            self.park(slot, partial);
            return;
        }
        if matches!(self.mode, GatherMode::Additive) && self.next == 0 {
            // Slot 0's fold is a wholesale copy; owning the partial lets us
            // move it into place instead — zero framebuffer traffic — and
            // retire the previous target to the pool. Values are identical
            // to the copy, and blend_texels accounting is unchanged (the
            // first fold never counted as blending).
            self.validate_size(&partial);
            self.received += 1;
            let retired = std::mem::replace(&mut self.texture, partial);
            if let Some(arena) = self.arena {
                arena.recycle_texture(retired);
            }
            self.next = 1;
            self.drain_parked();
            return;
        }
        self.push_ready(slot, &partial);
        if let Some(arena) = self.arena {
            arena.recycle_texture(partial);
        }
    }

    /// Additive only: folds a run of consecutive ready partials — slots
    /// `next .. next + partials.len()` — in **one destination pass**, as if
    /// each had been pushed in order. This is the all-partials-available
    /// fast path [`gather_additive`] takes: one traversal of the destination
    /// instead of one per partial.
    ///
    /// # Panics
    /// Panics in tiles mode, or when a partial's size disagrees.
    pub fn push_slice(&mut self, partials: &[&Texture]) {
        assert!(
            matches!(self.mode, GatherMode::Additive),
            "push_slice is additive-only"
        );
        if partials.is_empty() {
            return;
        }
        for partial in partials {
            self.validate_size(partial);
        }
        self.received += partials.len();
        self.fold_additive_run(partials);
        self.drain_parked();
    }

    /// True when this is an additive slot whose predecessors have not all
    /// been folded yet.
    fn needs_parking(&self, slot: usize) -> bool {
        matches!(self.mode, GatherMode::Additive) && slot != self.next
    }

    fn validate_size(&self, partial: &Texture) {
        assert_eq!(
            partial.width(),
            self.texture.width(),
            "texture widths differ"
        );
        assert_eq!(
            partial.height(),
            self.texture.height(),
            "texture heights differ"
        );
    }

    fn park(&mut self, slot: usize, partial: Texture) {
        self.validate_size(&partial);
        assert!(
            slot > self.next && !self.parked.contains_key(&slot),
            "additive slot {slot} already folded or duplicated"
        );
        self.received += 1;
        self.parked.insert(slot, partial);
    }

    fn push_ready(&mut self, slot: usize, partial: &Texture) {
        self.validate_size(partial);
        self.received += 1;
        match &self.mode {
            GatherMode::Additive => {
                // Fold the arrival together with the parked run it unlocks
                // in one fused pass when successors are already waiting.
                let run = self.take_parked_run(self.next + 1);
                {
                    let mut sources: Vec<&Texture> = Vec::with_capacity(1 + run.len());
                    sources.push(partial);
                    sources.extend(run.iter());
                    self.fold_additive_run(&sources);
                }
                self.recycle_all(run);
                self.drain_parked();
            }
            GatherMode::Tiles(tiles) => {
                let tile = *tiles.get(slot).expect("tile slot out of range");
                assert!(!self.tile_seen[slot], "tile slot {slot} pushed twice");
                self.tile_seen[slot] = true;
                self.blend_texels += tile.area() as u64;
                blit_tile(&mut self.texture, partial, tile);
            }
        }
    }

    /// Removes and returns the maximal run of parked partials starting at
    /// slot `from`.
    fn take_parked_run(&mut self, from: usize) -> Vec<Texture> {
        let mut run = Vec::new();
        while let Some(parked) = self.parked.remove(&(from + run.len())) {
            run.push(parked);
        }
        run
    }

    /// Folds any parked partials that became ready (only possible after a
    /// fold advanced `next`; in practice `take_parked_run` already drained
    /// them, so this is a correctness backstop, not a hot path).
    fn drain_parked(&mut self) {
        while self.parked.contains_key(&self.next) {
            let run = self.take_parked_run(self.next);
            {
                let sources: Vec<&Texture> = run.iter().collect();
                self.fold_additive_run(&sources);
            }
            self.recycle_all(run);
        }
    }

    fn recycle_all(&self, run: Vec<Texture>) {
        if let Some(arena) = self.arena {
            for texture in run {
                arena.recycle_texture(texture);
            }
        }
    }

    /// Folds `sources` into slots `next .. next + sources.len()` in a single
    /// destination traversal: every chunk of the destination is loaded once
    /// and all sources accumulate into it (in slot order) while it is
    /// cache-hot. Per-texel arithmetic and order match the classic
    /// `p0.clone(); acc += p1; acc += p2; ...` fold exactly, so the result
    /// is bit-identical to folding one partial at a time — the fusion saves
    /// memory traffic, not operations. Parallelized over chunks like the
    /// rest of the compose path; chunk boundaries never change per-texel
    /// arithmetic.
    fn fold_additive_run(&mut self, sources: &[&Texture]) {
        if sources.is_empty() {
            return;
        }
        let first_is_copy = self.next == 0;
        let len = self.texture.data().len() as u64;
        let chunk_len = compose_chunk_len(self.texture.width(), self.texture.height());
        let level = crate::simd::active();
        self.texture
            .data_mut()
            .par_chunks_mut(chunk_len)
            .enumerate()
            .for_each(|(chunk_index, chunk)| {
                fold_chunk(
                    chunk,
                    level,
                    sources,
                    chunk_index * chunk_len,
                    first_is_copy,
                );
            });
        self.blend_texels += (sources.len() as u64 - u64::from(first_is_copy)) * len;
        self.next += sources.len();
    }

    /// Number of partials pushed so far.
    pub fn received(&self) -> usize {
        self.received
    }

    /// Completes the composition.
    ///
    /// # Panics
    /// Panics when fewer partials arrived than the gather was constructed
    /// for (a missing trailing slot, an unpushed tile, or a parked
    /// out-of-order slot whose predecessor never came).
    pub fn finish(self) -> ComposeResult {
        assert!(
            self.parked.is_empty(),
            "gather finished with missing slots before {:?}",
            self.parked.keys().next()
        );
        assert_eq!(
            self.received, self.expected,
            "gather finished with {}/{} partials",
            self.received, self.expected
        );
        ComposeResult {
            texture: self.texture,
            blend_texels: self.blend_texels,
        }
    }
}

/// Folds a run of source textures into one destination chunk, specialized
/// per source count: the common fan-ins (a 2–4-pipe machine's partials all
/// ready at once) run as a single fused SIMD loop that reads every source
/// once and writes the destination once, instead of one read-modify-write
/// sweep per source. Per-texel addition order is the sequential fold's
/// left-association — `((p0 + p1) + p2) + …` — in every kernel, so all
/// dispatch levels are bit-identical.
fn fold_chunk(
    chunk: &mut [f32],
    level: crate::simd::SimdLevel,
    sources: &[&Texture],
    start: usize,
    first_is_copy: bool,
) {
    let len = chunk.len();
    let s = |k: usize| -> &[f32] { &sources[k].data()[start..start + len] };
    match (first_is_copy, sources.len()) {
        (_, 0) => {}
        (true, 1) => crate::simd::copy_slice(level, chunk, s(0)),
        (true, 2) => crate::simd::fold_copy(level, chunk, &[s(0), s(1)]),
        (true, 3) => crate::simd::fold_copy(level, chunk, &[s(0), s(1), s(2)]),
        (true, 4) => crate::simd::fold_copy(level, chunk, &[s(0), s(1), s(2), s(3)]),
        (false, 1) => crate::simd::fold_acc(level, chunk, &[s(0)]),
        (false, 2) => crate::simd::fold_acc(level, chunk, &[s(0), s(1)]),
        (false, 3) => crate::simd::fold_acc(level, chunk, &[s(0), s(1), s(2)]),
        (false, 4) => crate::simd::fold_acc(level, chunk, &[s(0), s(1), s(2), s(3)]),
        // Larger fan-ins: fold the leading quads with the fused kernels,
        // then the remainder — still one destination traversal per group of
        // four instead of per source.
        (first, _) => {
            let (head, tail) = sources.split_at(4);
            fold_chunk(chunk, level, head, start, first);
            fold_chunk(chunk, level, tail, start, false);
        }
    }
}

/// Copies `tile`'s pixel region of `partial` into `dst`, parallelized over
/// row chunks of the destination.
fn blit_tile(dst: &mut Texture, partial: &Texture, tile: PixelTile) {
    let width = dst.width();
    let height = dst.height();
    let x1 = tile.x1.min(width);
    if tile.x0 >= x1 {
        return;
    }
    let chunk_len = compose_chunk_len(width, height);
    let chunk_rows = chunk_len / width;
    let level = crate::simd::active();
    dst.data_mut()
        .par_chunks_mut(chunk_len)
        .enumerate()
        .for_each(|(chunk_index, chunk)| {
            let y_start = chunk_index * chunk_rows;
            let rows = chunk.len() / width;
            let y_lo = tile.y0.max(y_start);
            let y_hi = tile.y1.min(height).min(y_start + rows);
            for y in y_lo..y_hi {
                let local = (y - y_start) * width;
                let row_start = y * width;
                crate::simd::copy_slice(
                    level,
                    &mut chunk[local + tile.x0..local + x1],
                    &partial.data()[row_start + tile.x0..row_start + x1],
                );
            }
        });
}

/// Blends partial textures (all covering the full target) by texel-wise
/// addition. The additive blend is order independent, so the result does not
/// depend on the order of `partials` — the property the divide-and-conquer
/// correctness tests verify. All partials are available up front, so the
/// whole set folds in one fused destination pass
/// ([`StreamingGather::push_slice`]).
///
/// # Panics
/// Panics when `partials` is empty or the sizes disagree.
pub fn gather_additive(partials: &[Texture]) -> ComposeResult {
    assert!(!partials.is_empty(), "nothing to gather");
    let mut gather =
        StreamingGather::additive(partials[0].width(), partials[0].height(), partials.len());
    let sources: Vec<&Texture> = partials.iter().collect();
    gather.push_slice(&sources);
    gather.finish()
}

/// Composes per-tile partial textures by copying each tile's pixel region
/// into the final texture. Tiles must not overlap; texels not covered by any
/// tile remain zero.
///
/// # Panics
/// Panics when `partials` is empty, sizes disagree, or tile counts mismatch.
pub fn compose_tiles(partials: &[Texture], tiles: &[PixelTile]) -> ComposeResult {
    assert!(!partials.is_empty(), "nothing to compose");
    assert_eq!(partials.len(), tiles.len(), "one tile per partial texture");
    let mut gather =
        StreamingGather::tiles(partials[0].width(), partials[0].height(), tiles.to_vec());
    for (slot, partial) in partials.iter().enumerate() {
        gather.push(slot, partial);
    }
    gather.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constant(w: usize, h: usize, v: f32) -> Texture {
        let mut t = Texture::new(w, h);
        t.fill(v);
        t
    }

    #[test]
    fn gather_sums_partials() {
        let partials = vec![
            constant(8, 8, 0.25),
            constant(8, 8, 0.5),
            constant(8, 8, 1.0),
        ];
        let r = gather_additive(&partials);
        assert!(r.texture.data().iter().all(|&v| (v - 1.75).abs() < 1e-6));
        assert_eq!(r.blend_texels, 2 * 64);
    }

    #[test]
    fn gather_is_order_independent() {
        let a = constant(4, 4, 0.3);
        let b = constant(4, 4, 1.1);
        let c = constant(4, 4, -0.4);
        let fwd = gather_additive(&[a.clone(), b.clone(), c.clone()]);
        let rev = gather_additive(&[c, b, a]);
        assert!(fwd.texture.absolute_difference(&rev.texture) < 1e-5);
    }

    #[test]
    #[should_panic(expected = "nothing to gather")]
    fn gather_rejects_empty_input() {
        let _ = gather_additive(&[]);
    }

    #[test]
    fn streaming_gather_is_arrival_order_invariant_bitwise() {
        // Feed the same partials in forward and scrambled slot order: the
        // in-order fold must make the results bit-identical.
        let partials: Vec<Texture> = (0..5)
            .map(|i| {
                let mut t = Texture::new(16, 16);
                for (k, v) in t.data_mut().iter_mut().enumerate() {
                    *v = ((i * 131 + k) as f32).sin();
                }
                t
            })
            .collect();
        let forward = gather_additive(&partials);
        let mut scrambled = StreamingGather::additive(16, 16, 5);
        for &slot in &[3usize, 0, 4, 1, 2] {
            if slot % 2 == 0 {
                scrambled.push(slot, &partials[slot]);
            } else {
                scrambled.push_owned(slot, partials[slot].clone());
            }
        }
        assert_eq!(scrambled.received(), 5);
        let scrambled = scrambled.finish();
        assert_eq!(forward.texture.absolute_difference(&scrambled.texture), 0.0);
        assert_eq!(forward.blend_texels, scrambled.blend_texels);
    }

    #[test]
    #[should_panic(expected = "missing slots")]
    fn streaming_gather_rejects_missing_additive_slot() {
        let mut g = StreamingGather::additive(4, 4, 2);
        g.push(1, &constant(4, 4, 1.0));
        let _ = g.finish();
    }

    #[test]
    #[should_panic(expected = "2/3 partials")]
    fn streaming_gather_rejects_missing_trailing_slot() {
        let mut g = StreamingGather::additive(4, 4, 3);
        g.push(0, &constant(4, 4, 1.0));
        g.push_owned(1, constant(4, 4, 2.0));
        let _ = g.finish();
    }

    #[test]
    #[should_panic(expected = "pushed twice")]
    fn streaming_gather_rejects_duplicate_tile() {
        let tiles = PixelTile::grid(8, 8, 2, 1);
        let mut g = StreamingGather::tiles(8, 8, tiles);
        g.push(0, &constant(8, 8, 1.0));
        g.push(0, &constant(8, 8, 2.0));
    }

    #[test]
    #[should_panic(expected = "3/4 partials")]
    fn streaming_gather_rejects_missing_tile() {
        let tiles = PixelTile::grid(8, 8, 2, 2);
        let mut g = StreamingGather::tiles(8, 8, tiles);
        for slot in 0..3 {
            g.push(slot, &constant(8, 8, 1.0));
        }
        let _ = g.finish();
    }

    #[test]
    fn streaming_tiles_accept_any_arrival_order() {
        let tiles = PixelTile::grid(8, 8, 2, 2);
        let mut g = StreamingGather::tiles(8, 8, tiles.clone());
        for &slot in &[2usize, 0, 3, 1] {
            let mut p = Texture::new(8, 8);
            p.fill(slot as f32 + 1.0);
            g.push(slot, &p);
        }
        let r = g.finish();
        assert_eq!(r.blend_texels, 64);
        // Each quadrant carries its own tile's value.
        assert_eq!(r.texture.texel(0, 0), 1.0);
        assert_eq!(r.texture.texel(7, 0), 2.0);
        assert_eq!(r.texture.texel(0, 7), 3.0);
        assert_eq!(r.texture.texel(7, 7), 4.0);
    }

    #[test]
    fn tile_grid_partitions_texture_exactly() {
        let tiles = PixelTile::grid(512, 512, 2, 2);
        assert_eq!(tiles.len(), 4);
        let total: usize = tiles.iter().map(|t| t.area()).sum();
        assert_eq!(total, 512 * 512);
        // Every pixel is inside exactly one tile.
        for &(x, y) in &[(0, 0), (255, 255), (256, 256), (511, 511), (100, 400)] {
            let owners = tiles.iter().filter(|t| t.contains(x, y)).count();
            assert_eq!(owners, 1, "pixel ({x},{y}) owned by {owners} tiles");
        }
    }

    #[test]
    fn tile_grid_handles_non_divisible_sizes() {
        let tiles = PixelTile::grid(10, 7, 3, 2);
        let total: usize = tiles.iter().map(|t| t.area()).sum();
        assert_eq!(total, 70);
    }

    #[test]
    fn compose_tiles_copies_each_region() {
        let tiles = PixelTile::grid(8, 8, 2, 1);
        let mut left = Texture::new(8, 8);
        for y in 0..8 {
            for x in 0..4 {
                *left.texel_mut(x, y) = 1.0;
            }
        }
        let mut right = Texture::new(8, 8);
        for y in 0..8 {
            for x in 4..8 {
                *right.texel_mut(x, y) = 2.0;
            }
        }
        let r = compose_tiles(&[left, right], &tiles);
        assert_eq!(r.texture.texel(0, 0), 1.0);
        assert_eq!(r.texture.texel(3, 7), 1.0);
        assert_eq!(r.texture.texel(4, 0), 2.0);
        assert_eq!(r.texture.texel(7, 7), 2.0);
        assert_eq!(r.blend_texels, 64);
    }

    #[test]
    fn compose_tiles_ignores_content_outside_owned_region() {
        let tiles = PixelTile::grid(8, 8, 2, 1);
        // The left-tile texture also has garbage in the right half, which
        // must not leak into the final texture (overlap-boundary spots render
        // into both tiles; each tile only contributes its owned region).
        let mut left = constant(8, 8, 1.0);
        let right = constant(8, 8, 2.0);
        *left.texel_mut(6, 6) = 99.0;
        let r = compose_tiles(&[left, right], &tiles);
        assert_eq!(r.texture.texel(6, 6), 2.0);
    }

    #[test]
    #[should_panic(expected = "one tile per partial texture")]
    fn compose_tiles_rejects_count_mismatch() {
        let tiles = PixelTile::grid(8, 8, 2, 2);
        let _ = compose_tiles(&[constant(8, 8, 1.0)], &tiles);
    }

    #[test]
    fn large_textures_take_the_chunked_path_with_identical_results() {
        // 512² is above the parallel threshold; verify against a hand
        // sequential fold.
        let partials: Vec<Texture> = (0..3)
            .map(|i| {
                let mut t = Texture::new(512, 512);
                for (k, v) in t.data_mut().iter_mut().enumerate() {
                    *v = ((k % 97) as f32) * 0.01 + i as f32;
                }
                t
            })
            .collect();
        let mut expected = partials[0].clone();
        expected.accumulate(&partials[1]);
        expected.accumulate(&partials[2]);
        let got = gather_additive(&partials);
        assert_eq!(expected.absolute_difference(&got.texture), 0.0);
    }
}
