//! Workspace-level guarantees of the persistent pipe pool:
//!
//! * **Pooling is invisible.** Frames produced by a pipeline that checks
//!   pipe workers out of a [`softpipe::PipePool`] are bit-identical to
//!   spawn-per-frame synthesis, frame after frame, for additive and tiled
//!   partitioning alike.
//! * **Steady state is zero-spawn and zero-alloc.** After warm-up, a
//!   pooled pipeline's frames spawn no worker threads (pool spawn counter
//!   flat) and perform no framebuffer-sized allocations (arena allocation
//!   counter flat).
//! * **Sharing is size-safe.** One arena + one pool serve pipelines (and
//!   service sessions) with *different* frame sizes: no reallocation
//!   thrash, no cross-size buffer or pipe reuse, stats still flat.
//! * **Queued work blocks eviction.** A session with an admitted but not
//!   yet executed frame job cannot be idle-evicted out from under the
//!   worker that will pick it up.

use flowfield::analytic::Vortex;
use flowfield::{Rect, Vec2};
use softpipe::machine::MachineConfig;
use softpipe::{FrameArena, PipePool};
use spotnoise::config::SynthesisConfig;
use spotnoise::pipeline::{ExecutionMode, Pipeline};
use spotnoise_service::{serve, ServiceOptions, SessionSpec};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn domain() -> Rect {
    Rect::new(Vec2::ZERO, Vec2::new(1.0, 1.0))
}

fn vortex() -> Vortex {
    Vortex {
        omega: 1.0,
        center: Vec2::new(0.5, 0.5),
        domain: domain(),
    }
}

fn quick_cfg(texture_size: usize) -> SynthesisConfig {
    SynthesisConfig {
        texture_size,
        spot_count: 60,
        spot_texture_size: 8,
        ..SynthesisConfig::small_test()
    }
}

/// Builds a masters-only divide-and-conquer pipeline (deterministic frame
/// bytes) with display production off, the service configuration.
fn pipeline(cfg: SynthesisConfig, groups: usize) -> Pipeline {
    let machine = MachineConfig::new(groups, groups);
    let mut p = Pipeline::new(cfg, ExecutionMode::DivideAndConquer(machine), domain());
    p.set_display_enabled(false);
    p
}

#[test]
fn pooled_frames_are_bit_identical_to_spawn_per_frame() {
    let field = vortex();
    for tiled in [false, true] {
        let cfg = SynthesisConfig {
            use_tiling: tiled,
            ..quick_cfg(64)
        };
        let mut pooled = pipeline(cfg, 4);
        let mut spawning = pipeline(cfg, 4);
        spawning.set_pipe_pool(None);
        if pooled.pipe_pool().is_none() {
            // The opt-out CI matrix leg (SPOTNOISE_PIPE_POOL=off): force a
            // pool onto one side so the comparison still tests reuse.
            pooled.set_pipe_pool(Some(Arc::new(PipePool::new(pooled.frame_arena().cloned()))));
        }
        for frame in 0..4 {
            let a = pooled.advance(&field, 0.05, 0);
            let b = spawning.advance(&field, 0.05, 0);
            assert_eq!(
                a.texture.absolute_difference(&b.texture),
                0.0,
                "tiled={tiled} frame {frame}: pooled output diverged from spawn-per-frame"
            );
            if let Some(arena) = pooled.frame_arena() {
                arena.recycle_texture(a.texture);
            }
        }
        // Reuse actually happened: only the first frame spawned workers.
        let stats = pooled.pipe_pool().expect("pool installed").stats();
        assert!(stats.reused > 0, "tiled={tiled}: no worker was ever reused");
    }
}

#[test]
fn steady_state_spawns_zero_threads_and_allocates_zero_framebuffers() {
    let field = vortex();
    // Single group — the service's default session shape. Its buffer cycle
    // is fully deterministic (the master runs inline on the calling
    // thread), so the strict "never again" assertions are exact.
    let mut p = pipeline(quick_cfg(64), 1);
    if p.pipe_pool().is_none() {
        p.set_pipe_pool(Some(Arc::new(PipePool::new(p.frame_arena().cloned()))));
    }
    // Warm-up: the first frames fault in pipes and buffers.
    for _ in 0..2 {
        let out = p.advance(&field, 0.05, 0);
        p.frame_arena().unwrap().recycle_texture(out.texture);
    }
    let arena_after_warmup = p.frame_arena().unwrap().stats();
    let pool_after_warmup = p.pipe_pool().unwrap().stats();
    for _ in 0..6 {
        let out = p.advance(&field, 0.05, 0);
        p.frame_arena().unwrap().recycle_texture(out.texture);
    }
    let arena = p.frame_arena().unwrap().stats();
    let pool = p.pipe_pool().unwrap().stats();
    assert_eq!(
        pool.spawned, pool_after_warmup.spawned,
        "a steady-state frame spawned a pipe worker thread: {pool:?}"
    );
    assert_eq!(
        arena.texture_allocations, arena_after_warmup.texture_allocations,
        "a steady-state frame allocated a framebuffer: {arena:?}"
    );
    assert!(pool.reused >= 6, "every frame re-leases the group's pipe");
    assert!(arena.texture_reuses > arena_after_warmup.texture_reuses);

    // Multi-group engines run their masters on scoped threads, so the
    // arena's transient high-water demand is timing-dependent — but it is
    // *bounded* (one gather target + per group one partial and one
    // replacement, plus the served frame), and pipe spawns stay exactly
    // one per (size, group) key.
    let mut p = pipeline(quick_cfg(64), 2);
    if p.pipe_pool().is_none() {
        p.set_pipe_pool(Some(Arc::new(PipePool::new(p.frame_arena().cloned()))));
    }
    for _ in 0..12 {
        let out = p.advance(&field, 0.05, 0);
        p.frame_arena().unwrap().recycle_texture(out.texture);
    }
    let pool = p.pipe_pool().unwrap().stats();
    assert_eq!(pool.spawned, 2, "one persistent worker per group: {pool:?}");
    let arena = p.frame_arena().unwrap().stats();
    assert!(
        arena.texture_allocations <= 2 * 2 + 2,
        "multi-group allocations exceeded the in-flight bound: {arena:?}"
    );
    assert!(arena.texture_reuses > arena.texture_allocations);
}

#[test]
fn shared_pools_serve_mixed_frame_sizes_without_thrash_or_crosstalk() {
    let field = vortex();
    let arena = Arc::new(FrameArena::new());
    let pool = Arc::new(PipePool::with_capacity(Some(Arc::clone(&arena)), 16));

    let attach = |cfg: SynthesisConfig, groups: usize| {
        let mut p = pipeline(cfg, groups);
        p.set_frame_arena(Some(Arc::clone(&arena)));
        p.set_pipe_pool(Some(Arc::clone(&pool)));
        p
    };
    // Single-group pipelines: the deterministic buffer cycle makes the
    // strict flat-allocation assertions below exact (multi-group timing
    // variance is covered separately by the steady-state test).
    let mut small = attach(quick_cfg(64), 1);
    let mut large = attach(quick_cfg(128), 1);
    // Private references with the same configs (own pools, own arenas).
    let mut small_ref = pipeline(quick_cfg(64), 1);
    let mut large_ref = pipeline(quick_cfg(128), 1);

    let mut warmed_arena = None;
    let mut warmed_pool = None;
    for frame in 0..6 {
        // Interleave the two sizes so every checkout alternates size
        // classes — the pattern that would thrash a size-blind pool.
        let a = small.advance(&field, 0.05, 0);
        let b = large.advance(&field, 0.05, 0);
        let ra = small_ref.advance(&field, 0.05, 0);
        let rb = large_ref.advance(&field, 0.05, 0);
        assert_eq!(
            a.texture.absolute_difference(&ra.texture),
            0.0,
            "frame {frame}: shared-pool 64x64 output diverged"
        );
        assert_eq!(
            b.texture.absolute_difference(&rb.texture),
            0.0,
            "frame {frame}: shared-pool 128x128 output diverged"
        );
        arena.recycle_texture(a.texture);
        arena.recycle_texture(b.texture);
        if let Some(own) = small_ref.frame_arena() {
            own.recycle_texture(ra.texture);
        }
        if let Some(own) = large_ref.frame_arena() {
            own.recycle_texture(rb.texture);
        }
        if frame == 1 {
            warmed_arena = Some(arena.stats());
            warmed_pool = Some(pool.stats());
        }
    }
    // No realloc thrash: once both size classes are warm, alternating
    // checkouts allocate nothing and spawn nothing.
    let warmed_arena = warmed_arena.unwrap();
    let warmed_pool = warmed_pool.unwrap();
    let final_arena = arena.stats();
    let final_pool = pool.stats();
    assert_eq!(
        final_arena.texture_allocations, warmed_arena.texture_allocations,
        "mixed-size steady state reallocated framebuffers: {final_arena:?}"
    );
    assert_eq!(
        final_pool.spawned, warmed_pool.spawned,
        "mixed-size steady state spawned pipe workers: {final_pool:?}"
    );
    // No cross-size reuse: the arena pools exactly the two frame-size
    // classes (64x64 and 128x128 — spot textures and command buffers are
    // not framebuffer-sized and live elsewhere).
    assert_eq!(arena.texture_size_classes(), 2);
}

#[test]
fn service_sessions_share_one_pool_across_frame_sizes() {
    let handle = serve(
        "127.0.0.1:0",
        ServiceOptions {
            workers: 1,
            ..ServiceOptions::default()
        },
    )
    .expect("bind loopback");
    let service = handle.service();

    let spec = |size: usize| SessionSpec {
        config: quick_cfg(size),
        ..SessionSpec::default()
    };
    let small = service.create_session(spec(32)).unwrap();
    let large = service.create_session(spec(64)).unwrap();

    // Render disjoint frame indices on both sessions (every fetch is a cache
    // miss, so every fetch synthesizes through the shared pools).
    for frame in 0..3 {
        let a = service.fetch_frame(small, frame).unwrap();
        let b = service.fetch_frame(large, frame).unwrap();
        assert_eq!(a.bytes.len(), 32 * 32 * 4);
        assert_eq!(b.bytes.len(), 64 * 64 * 4);
    }
    let arena = service.pools().arena.as_ref().expect("shared arena");
    let warm_arena = arena.stats();
    let warm_pool = service.pools().pipes.as_ref().map(|p| p.stats());
    for frame in 3..6 {
        service.fetch_frame(small, frame).unwrap();
        service.fetch_frame(large, frame).unwrap();
    }
    let final_arena = arena.stats();
    assert_eq!(
        final_arena.texture_allocations, warm_arena.texture_allocations,
        "steady-state service frames allocated framebuffers: {final_arena:?}"
    );
    if let (Some(warm), Some(pool)) = (warm_pool, &service.pools().pipes) {
        assert_eq!(
            pool.stats().spawned,
            warm.spawned,
            "steady-state service frames spawned pipe workers"
        );
        assert!(pool.stats().reused > warm.reused);
    }
    handle.shutdown();
}

#[test]
fn queued_jobs_protect_their_session_from_idle_eviction() {
    // One worker, an idle timeout far below the burst duration: session
    // B's job waits in the queue while the worker renders session A's long
    // burst, so B sits unlocked and "idle" well past the timeout while
    // concurrent /stats sweeps run eviction the whole time. Without
    // in-flight tracking B is reaped between admission and execution and
    // its admitted fetch comes back NotFound.
    let handle = serve(
        "127.0.0.1:0",
        ServiceOptions {
            workers: 1,
            idle_timeout: Duration::from_millis(50),
            ..ServiceOptions::default()
        },
    )
    .expect("bind loopback");
    let service = handle.service();
    let spec = SessionSpec {
        // 120 frames of this config take well over the idle timeout.
        config: SynthesisConfig {
            texture_size: 64,
            spot_texture_size: 8,
            ..SynthesisConfig::small_test()
        },
        ..SessionSpec::default()
    };
    let a = service.create_session(spec).unwrap();
    let b = service.create_session(spec).unwrap();

    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Eviction sweeps run for the whole duration of both requests
        // (GET /stats triggers evict_idle on every call).
        let sweeper = scope.spawn(|| {
            let stats = spotnoise_service::http::Request {
                method: "GET".to_string(),
                path: "/stats".to_string(),
                body: Vec::new(),
                keep_alive: true,
                deadline_ms: None,
            };
            while !done.load(Ordering::SeqCst) {
                let _ = service.route(&stats);
                std::thread::yield_now();
            }
        });
        let slow = scope.spawn(|| service.fetch_frame(a, 120));
        let queued = scope.spawn(|| service.fetch_frame(b, 0));
        let slow = slow.join().unwrap();
        let queued = queued.join().unwrap();
        done.store(true, Ordering::SeqCst);
        sweeper.join().unwrap();
        assert!(slow.is_ok(), "burst request failed: {slow:?}");
        assert!(
            queued.is_ok(),
            "queued request lost its session to idle eviction: {queued:?}"
        );
    });
    handle.shutdown();
}
