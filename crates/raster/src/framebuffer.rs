//! RGB framebuffers for the final rendered scene.
//!
//! Step 4 of the spot-noise pipeline maps the synthesised texture onto a
//! geometric surface and superimposes other visualization techniques
//! (colormapped pollutant, map outlines, arrows). The framebuffer is the
//! render target of that step; it also provides the PPM export used by the
//! examples and the figure-reproduction harness.

use serde::{Deserialize, Serialize};
use std::io::{self, Write};
use std::path::Path;

/// An 8-bit-per-channel RGB colour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Rgb {
    /// Red channel.
    pub r: u8,
    /// Green channel.
    pub g: u8,
    /// Blue channel.
    pub b: u8,
}

impl Rgb {
    /// Creates a colour from channel values.
    pub const fn new(r: u8, g: u8, b: u8) -> Self {
        Rgb { r, g, b }
    }

    /// Creates a grey level.
    pub const fn gray(v: u8) -> Self {
        Rgb { r: v, g: v, b: v }
    }

    /// Creates a colour from floating point channels in `[0, 1]` (clamped).
    pub fn from_f32(r: f32, g: f32, b: f32) -> Self {
        let q = |v: f32| (v.clamp(0.0, 1.0) * 255.0).round() as u8;
        Rgb::new(q(r), q(g), q(b))
    }

    /// Linear interpolation between two colours.
    pub fn lerp(self, other: Rgb, t: f32) -> Rgb {
        let t = t.clamp(0.0, 1.0);
        let mix = |a: u8, b: u8| (a as f32 + (b as f32 - a as f32) * t).round() as u8;
        Rgb::new(
            mix(self.r, other.r),
            mix(self.g, other.g),
            mix(self.b, other.b),
        )
    }
}

/// A simple RGB framebuffer with origin at the bottom-left.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Framebuffer {
    width: usize,
    height: usize,
    pixels: Vec<Rgb>,
}

impl Framebuffer {
    /// Creates a black framebuffer.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "framebuffer must be non-empty");
        Framebuffer {
            width,
            height,
            pixels: vec![Rgb::default(); width * height],
        }
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// The pixel at `(x, y)`.
    #[inline]
    pub fn pixel(&self, x: usize, y: usize) -> Rgb {
        debug_assert!(x < self.width && y < self.height);
        self.pixels[y * self.width + x]
    }

    /// Mutable reference to the pixel at `(x, y)`.
    #[inline]
    pub fn pixel_mut(&mut self, x: usize, y: usize) -> &mut Rgb {
        debug_assert!(x < self.width && y < self.height);
        &mut self.pixels[y * self.width + x]
    }

    /// Fills the whole framebuffer with one colour.
    pub fn clear(&mut self, color: Rgb) {
        self.pixels.fill(color);
    }

    /// Sets the pixel at `(x, y)` if it lies inside the framebuffer;
    /// out-of-bounds writes are silently ignored (convenient for line and
    /// glyph drawing near the border).
    pub fn set_checked(&mut self, x: isize, y: isize, color: Rgb) {
        if x >= 0 && y >= 0 && (x as usize) < self.width && (y as usize) < self.height {
            self.pixels[y as usize * self.width + x as usize] = color;
        }
    }

    /// Draws a line segment with Bresenham-style DDA stepping.
    pub fn draw_line(&mut self, x0: f64, y0: f64, x1: f64, y1: f64, color: Rgb) {
        let dx = x1 - x0;
        let dy = y1 - y0;
        let steps = dx.abs().max(dy.abs()).ceil().max(1.0) as usize;
        for k in 0..=steps {
            let t = k as f64 / steps as f64;
            let x = (x0 + dx * t).round() as isize;
            let y = (y0 + dy * t).round() as isize;
            self.set_checked(x, y, color);
        }
    }

    /// The raw pixel storage, row-major from the bottom row.
    pub fn pixels(&self) -> &[Rgb] {
        &self.pixels
    }

    /// Encodes the framebuffer as a binary PPM (P6) image. The image is
    /// flipped vertically on output so that viewers (which put the origin at
    /// the top-left) show the y axis pointing up.
    pub fn write_ppm(&self, mut w: impl Write) -> io::Result<()> {
        write!(w, "P6\n{} {}\n255\n", self.width, self.height)?;
        let mut row = Vec::with_capacity(self.width * 3);
        for y in (0..self.height).rev() {
            row.clear();
            for x in 0..self.width {
                let p = self.pixel(x, y);
                row.extend_from_slice(&[p.r, p.g, p.b]);
            }
            w.write_all(&row)?;
        }
        Ok(())
    }

    /// Writes the framebuffer to a PPM file.
    pub fn save_ppm(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let file = std::fs::File::create(path)?;
        self.write_ppm(io::BufWriter::new(file))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_framebuffer_is_black() {
        let fb = Framebuffer::new(4, 3);
        assert_eq!(fb.width(), 4);
        assert_eq!(fb.height(), 3);
        assert!(fb.pixels().iter().all(|p| *p == Rgb::default()));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_size_framebuffer_rejected() {
        let _ = Framebuffer::new(0, 3);
    }

    #[test]
    fn pixel_read_write_and_clear() {
        let mut fb = Framebuffer::new(8, 8);
        *fb.pixel_mut(3, 4) = Rgb::new(10, 20, 30);
        assert_eq!(fb.pixel(3, 4), Rgb::new(10, 20, 30));
        fb.clear(Rgb::gray(128));
        assert!(fb.pixels().iter().all(|p| *p == Rgb::gray(128)));
    }

    #[test]
    fn set_checked_ignores_out_of_bounds() {
        let mut fb = Framebuffer::new(4, 4);
        fb.set_checked(-1, 0, Rgb::gray(255));
        fb.set_checked(0, 100, Rgb::gray(255));
        fb.set_checked(2, 2, Rgb::gray(255));
        assert_eq!(fb.pixel(2, 2), Rgb::gray(255));
        assert_eq!(fb.pixel(0, 0), Rgb::default());
    }

    #[test]
    fn draw_line_touches_endpoints() {
        let mut fb = Framebuffer::new(16, 16);
        fb.draw_line(1.0, 1.0, 10.0, 5.0, Rgb::gray(200));
        assert_eq!(fb.pixel(1, 1), Rgb::gray(200));
        assert_eq!(fb.pixel(10, 5), Rgb::gray(200));
        // Some pixel in between is set.
        let lit = fb.pixels().iter().filter(|p| **p == Rgb::gray(200)).count();
        assert!(lit >= 10);
    }

    #[test]
    fn rgb_from_f32_clamps() {
        assert_eq!(Rgb::from_f32(2.0, -1.0, 0.5), Rgb::new(255, 0, 128));
    }

    #[test]
    fn rgb_lerp_endpoints() {
        let a = Rgb::new(0, 0, 0);
        let b = Rgb::new(255, 100, 50);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        let mid = a.lerp(b, 0.5);
        assert!(mid.r > 120 && mid.r < 135);
    }

    #[test]
    fn ppm_output_has_header_and_size() {
        let mut fb = Framebuffer::new(3, 2);
        fb.clear(Rgb::new(1, 2, 3));
        let mut buf = Vec::new();
        fb.write_ppm(&mut buf).unwrap();
        let header = String::from_utf8_lossy(&buf[..11]).to_string();
        assert!(header.starts_with("P6\n3 2\n255\n"));
        assert_eq!(buf.len(), 11 + 3 * 2 * 3);
        assert_eq!(&buf[11..14], &[1, 2, 3]);
    }
}
