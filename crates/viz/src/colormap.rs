//! Colour maps.
//!
//! Figure 6 of the paper uses "a rainbow colormap ... for assigning colors to
//! the pollutant" superimposed on the grayscale spot-noise texture. The
//! rainbow map is reproduced here together with a few better-behaved
//! alternatives used by the examples.

use serde::{Deserialize, Serialize};
use softpipe::Rgb;

/// Available colour maps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Colormap {
    /// Plain grayscale (used for the spot-noise texture itself).
    Grayscale,
    /// The classic blue→cyan→green→yellow→red rainbow of the paper.
    Rainbow,
    /// A blue–white–red diverging map (useful for vorticity).
    Diverging,
    /// A dark-to-warm sequential map (a simple inferno-like ramp).
    Heat,
}

impl Colormap {
    /// Maps a normalised value `t` in `[0, 1]` (clamped) to a colour.
    pub fn map(self, t: f32) -> Rgb {
        let t = if t.is_nan() { 0.0 } else { t.clamp(0.0, 1.0) };
        match self {
            Colormap::Grayscale => Rgb::from_f32(t, t, t),
            Colormap::Rainbow => rainbow(t),
            Colormap::Diverging => diverging(t),
            Colormap::Heat => heat(t),
        }
    }
}

fn rainbow(t: f32) -> Rgb {
    // Piecewise-linear HSV-like sweep: blue -> cyan -> green -> yellow -> red.
    let (r, g, b) = if t < 0.25 {
        let s = t / 0.25;
        (0.0, s, 1.0)
    } else if t < 0.5 {
        let s = (t - 0.25) / 0.25;
        (0.0, 1.0, 1.0 - s)
    } else if t < 0.75 {
        let s = (t - 0.5) / 0.25;
        (s, 1.0, 0.0)
    } else {
        let s = (t - 0.75) / 0.25;
        (1.0, 1.0 - s, 0.0)
    };
    Rgb::from_f32(r, g, b)
}

fn diverging(t: f32) -> Rgb {
    if t < 0.5 {
        let s = t / 0.5;
        Rgb::from_f32(0.2 + 0.8 * s, 0.3 + 0.7 * s, 1.0)
    } else {
        let s = (t - 0.5) / 0.5;
        Rgb::from_f32(1.0, 1.0 - 0.7 * s, 1.0 - 0.8 * s)
    }
}

fn heat(t: f32) -> Rgb {
    Rgb::from_f32(
        (t * 2.0).min(1.0),
        (t * 1.4 - 0.3).clamp(0.0, 1.0),
        (t * 3.0 - 2.2).clamp(0.0, 1.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grayscale_endpoints() {
        assert_eq!(Colormap::Grayscale.map(0.0), Rgb::new(0, 0, 0));
        assert_eq!(Colormap::Grayscale.map(1.0), Rgb::new(255, 255, 255));
        assert_eq!(
            Colormap::Grayscale.map(0.5).r,
            Colormap::Grayscale.map(0.5).g
        );
    }

    #[test]
    fn rainbow_ends_blue_and_red() {
        let lo = Colormap::Rainbow.map(0.0);
        let hi = Colormap::Rainbow.map(1.0);
        assert!(lo.b > 200 && lo.r < 50);
        assert!(hi.r > 200 && hi.b < 50);
        // The middle is greenish.
        let mid = Colormap::Rainbow.map(0.5);
        assert!(mid.g > 200);
    }

    #[test]
    fn out_of_range_and_nan_are_clamped() {
        assert_eq!(Colormap::Rainbow.map(-3.0), Colormap::Rainbow.map(0.0));
        assert_eq!(Colormap::Rainbow.map(7.0), Colormap::Rainbow.map(1.0));
        assert_eq!(Colormap::Heat.map(f32::NAN), Colormap::Heat.map(0.0));
    }

    #[test]
    fn diverging_midpoint_is_light() {
        let mid = Colormap::Diverging.map(0.5);
        assert!(mid.r > 200 && mid.g > 200 && mid.b > 200);
        let lo = Colormap::Diverging.map(0.0);
        let hi = Colormap::Diverging.map(1.0);
        assert!(lo.b > lo.r);
        assert!(hi.r > hi.b);
    }

    #[test]
    fn heat_is_monotone_in_red() {
        let mut prev = -1i32;
        for k in 0..=10 {
            let c = Colormap::Heat.map(k as f32 / 10.0);
            assert!(c.r as i32 >= prev);
            prev = c.r as i32;
        }
    }
}
