//! Minimal JSON emission.
//!
//! The container this repository builds in has no registry access, so
//! `serde_json` is unavailable; the handful of JSON artifacts the harness
//! writes (`tableN.json`, `BENCH_raster.json`) are emitted through this small
//! value builder instead. Output is pretty-printed with two-space indents and
//! stable key order (insertion order).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Finite number (non-finite values are emitted as `null`, like
    /// serde_json's default behaviour for f64).
    Number(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Json>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn object(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds an array from values.
    pub fn array(values: impl IntoIterator<Item = Json>) -> Json {
        Json::Array(values.into_iter().collect())
    }

    /// Builds a string value.
    pub fn str(value: impl Into<String>) -> Json {
        Json::Str(value.into())
    }

    /// Builds a number value.
    pub fn num(value: f64) -> Json {
        Json::Number(value)
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close_pad = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => {
                if !n.is_finite() {
                    out.push_str("null");
                } else if *n == n.trunc() && n.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&close_pad);
                out.push(']');
            }
            Json::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in pairs.iter().enumerate() {
                    out.push_str(&pad);
                    Json::Str(key.clone()).write(out, indent + 1);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&close_pad);
                out.push('}');
            }
        }
    }
}

/// Serializes a table sweep the way `reproduce` stores `tableN.json`.
pub fn sweep_cells_to_json(cells: &[crate::SweepCell]) -> String {
    Json::array(cells.iter().map(|c| {
        Json::object([
            ("processors", Json::num(c.processors as f64)),
            ("pipes", Json::num(c.pipes as f64)),
            (
                "simulated_textures_per_second",
                Json::num(c.simulated_textures_per_second),
            ),
            (
                "measured_textures_per_second",
                Json::num(c.measured_textures_per_second),
            ),
            (
                "prediction",
                Json::object([
                    (
                        "group_seconds",
                        Json::array(c.prediction.group_seconds.iter().map(|&s| Json::num(s))),
                    ),
                    ("blend_seconds", Json::num(c.prediction.blend_seconds)),
                    ("total_seconds", Json::num(c.prediction.total_seconds)),
                    (
                        "textures_per_second",
                        Json::num(c.prediction.textures_per_second),
                    ),
                    ("bus_seconds", Json::num(c.prediction.bus_seconds)),
                ]),
            ),
        ])
    }))
    .to_string_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.to_string_pretty(), "null\n");
        assert_eq!(Json::Bool(true).to_string_pretty(), "true\n");
        assert_eq!(Json::num(3.0).to_string_pretty(), "3\n");
        assert_eq!(Json::num(3.25).to_string_pretty(), "3.25\n");
        assert_eq!(Json::num(f64::NAN).to_string_pretty(), "null\n");
    }

    #[test]
    fn strings_are_escaped() {
        let s = Json::str("a\"b\\c\nd").to_string_pretty();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"\n");
    }

    #[test]
    fn nested_structure_is_indented() {
        let v = Json::object([
            ("name", Json::str("quad")),
            ("values", Json::array([Json::num(1.0), Json::num(2.0)])),
            ("empty", Json::array([])),
        ]);
        let text = v.to_string_pretty();
        assert!(text.contains("\"name\": \"quad\""));
        assert!(text.contains("\"empty\": []"));
        assert!(text.starts_with("{\n  "));
        assert!(text.ends_with("}\n"));
    }
}
