//! A minimal HTTP/1.1 layer over `std::net`.
//!
//! The container this workspace builds in has no registry access, so there
//! is no hyper/axum to lean on; the service speaks just enough HTTP/1.1 for
//! its API: request-line + headers + `Content-Length` bodies in,
//! fixed-length responses with keep-alive out — plus chunked
//! `Transfer-Encoding` *responses* for the frame-streaming endpoint (one
//! chunk per [`FrameRecord`], terminal zero-length chunk, connection
//! reusable afterwards). Chunked *requests* stay rejected: they are a
//! request-smuggling vector for this parser. Request size is capped so a
//! misbehaving client cannot balloon memory.

use spotnoise::json::Json;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::sync::Arc;

/// Upper bound on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body.
const MAX_BODY_BYTES: usize = 256 * 1024;

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Path component of the request target (query strings are not used by
    /// this API and are kept attached).
    pub path: String,
    /// Raw body bytes (empty when absent).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
    /// Per-request deadline budget from the `X-Deadline-Ms` header: the
    /// client's statement of how long an answer is still worth producing.
    /// An unparseable value is treated as absent rather than rejected — a
    /// deadline is advisory, and refusing the request it rides on would
    /// invert its purpose.
    pub deadline_ms: Option<u64>,
}

/// Reads one `\n`-terminated line, refusing to buffer more than `cap`
/// bytes. A plain `read_line` would grow its buffer without bound on a
/// stream that never sends a newline — the cap turns that into an error
/// *while reading*, before the bytes accumulate, so the head-size limit
/// cannot be sidestepped by one enormous line.
fn read_line_capped(reader: &mut impl BufRead, cap: usize, line: &mut String) -> io::Result<usize> {
    let n = reader.by_ref().take(cap as u64 + 1).read_line(line)?;
    if n > cap || (n == cap && !line.ends_with('\n')) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "request head too large",
        ));
    }
    Ok(n)
}

/// Reads one request from a buffered stream. `Ok(None)` is a clean
/// end-of-stream before a request line (the client hung up between
/// keep-alive requests).
///
/// # Keep-alive framing
///
/// A body-bearing request **must** announce its body with
/// `Content-Length`; this parser supports no other framing (chunked
/// encoding is rejected as unframeable for the same reason). A client that
/// sends a body without one would desync the stream — the body bytes would
/// be parsed as the next request's head. When body-method requests
/// (`POST`/`PUT`/`PATCH`) omit the header *and* more bytes are already
/// buffered behind the head (i.e. an unannounced body demonstrably
/// arrived), the parser fails with [`io::ErrorKind::InvalidInput`], which
/// the server maps to `411 Length Required` + connection close. A
/// body-method request with no header and nothing buffered is treated as
/// bodyless (a bare `POST /shutdown` is legal); if an unannounced body
/// trickles in later it can no longer be mistaken for a response to *this*
/// request — the next head parse fails with a 400 and the connection
/// closes, so the stream never serves desynced answers.
pub fn read_request<R: Read>(reader: &mut BufReader<R>) -> io::Result<Option<Request>> {
    let mut line = String::new();
    if read_line_capped(reader, MAX_HEAD_BYTES, &mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m.to_ascii_uppercase(), p.to_string(), v.to_string()),
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed request line {line:?}"),
            ))
        }
    };

    let mut content_length: Option<usize> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut chunked = false;
    // HTTP/1.1 defaults to keep-alive; HTTP/1.0 to close.
    let mut keep_alive = version != "HTTP/1.0";
    let mut head_bytes = line.len();
    loop {
        let mut header = String::new();
        let budget = MAX_HEAD_BYTES.saturating_sub(head_bytes);
        if budget == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "request head too large",
            ));
        }
        if read_line_capped(reader, budget, &mut header)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-headers",
            ));
        }
        head_bytes += header.len();
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = Some(value.parse().map_err(|_| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("bad content-length {value:?}"),
                    )
                })?);
            } else if name.eq_ignore_ascii_case("connection") {
                keep_alive = !value.eq_ignore_ascii_case("close");
            } else if name.eq_ignore_ascii_case("transfer-encoding") {
                chunked = true;
            } else if name.eq_ignore_ascii_case("x-deadline-ms") {
                deadline_ms = value.parse().ok();
            }
        }
    }
    let body_method = matches!(method.as_str(), "POST" | "PUT" | "PATCH");
    if chunked || (content_length.is_none() && body_method && !reader.buffer().is_empty()) {
        // Either an explicitly unframeable body (any Transfer-Encoding —
        // rejected even alongside a Content-Length, which RFC 7230 treats
        // as a smuggling vector: honouring the length would leave the
        // chunk framing in the stream as a phantom next request), or bytes
        // already buffered behind a body-method head that announced no
        // length: parsing on would desync the stream. Note the deliberate
        // trade-off in the buffered-bytes heuristic: a client that
        // pipelines a *bodyless* POST with its next request in one segment
        // is also answered 411 — none of this API's clients pipeline
        // POSTs, and such a client can disambiguate by sending
        // `Content-Length: 0`.
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "body without content-length",
        ));
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "request body too large",
        ));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Some(Request {
        method,
        path,
        body,
        keep_alive,
        deadline_ms,
    }))
}

/// A response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra headers (name, value).
    pub headers: Vec<(String, String)>,
    /// Body bytes, shared so a cached frame buffer is written straight from
    /// the cache's `Arc` instead of being deep-copied per response (frame
    /// bodies run to megabytes on the hot path).
    pub body: Arc<Vec<u8>>,
}

/// Canonical reason phrases for the codes this API uses.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, value: Json) -> Self {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: Arc::new(value.to_string_pretty().into_bytes()),
        }
    }

    /// A plain-text response with an explicit content type (the `/metrics`
    /// endpoint uses the Prometheus text exposition type).
    pub fn text(status: u16, content_type: &'static str, body: String) -> Self {
        Response {
            status,
            content_type,
            headers: Vec::new(),
            body: Arc::new(body.into_bytes()),
        }
    }

    /// A raw binary response.
    pub fn bytes(status: u16, body: Vec<u8>) -> Self {
        Response::shared(status, Arc::new(body))
    }

    /// A raw binary response over an existing shared buffer (no copy).
    pub fn shared(status: u16, body: Arc<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: "application/octet-stream",
            headers: Vec::new(),
            body,
        }
    }

    /// An empty response (e.g. `204`).
    pub fn empty(status: u16) -> Self {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: Arc::new(Vec::new()),
        }
    }

    /// A JSON error envelope `{"error": ..., "detail": ...}`.
    pub fn error(status: u16, error: &str, detail: &str) -> Self {
        Response::json(
            status,
            Json::object([("error", Json::str(error)), ("detail", Json::str(detail))]),
        )
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Serializes the response onto a stream.
    pub fn write_to(&self, out: &mut impl Write, keep_alive: bool) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            status_text(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        out.write_all(head.as_bytes())?;
        out.write_all(&self.body)?;
        out.flush()
    }
}

/// Upper bound on a single response chunk a client will accept. The largest
/// legitimate chunk is one frame record: a 2048² `f32` texture (16 MiB)
/// plus the record header.
const MAX_CHUNK_BYTES: usize = 32 << 20;

/// Writes the head of a chunked streaming response. After this, the body is
/// a sequence of [`write_chunk`] / [`write_frame_record`] calls closed by
/// [`finish_chunked`]; the connection stays framed, so `keep_alive` works
/// exactly as for fixed-length responses.
pub fn write_stream_head(
    out: &mut impl Write,
    status: u16,
    headers: &[(String, String)],
    keep_alive: bool,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/octet-stream\r\nTransfer-Encoding: chunked\r\nConnection: {}\r\n",
        status,
        status_text(status),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    out.write_all(head.as_bytes())?;
    out.flush()
}

/// Writes one chunk whose data is the concatenation of `parts` — the
/// multi-part form exists so a frame record (tiny header + megabytes of
/// `Arc`-shared body) is written straight from its two slices with **no**
/// intermediate copy of the frame bytes.
pub fn write_chunk_parts(out: &mut impl Write, parts: &[&[u8]]) -> io::Result<()> {
    let len: usize = parts.iter().map(|p| p.len()).sum();
    write!(out, "{len:x}\r\n")?;
    for part in parts {
        out.write_all(part)?;
    }
    out.write_all(b"\r\n")?;
    out.flush()
}

/// Writes one chunk.
pub fn write_chunk(out: &mut impl Write, data: &[u8]) -> io::Result<()> {
    write_chunk_parts(out, &[data])
}

/// Writes the terminal zero-length chunk that ends a chunked body (no
/// trailers), leaving the connection framed for the next request.
pub fn finish_chunked(out: &mut impl Write) -> io::Result<()> {
    out.write_all(b"0\r\n\r\n")?;
    out.flush()
}

/// Reads one chunk of a chunked response body. `Ok(None)` is the terminal
/// zero-length chunk — the body is complete and the connection is back in
/// sync for the next request.
pub fn read_chunk(reader: &mut impl BufRead) -> io::Result<Option<Vec<u8>>> {
    let mut line = String::new();
    read_line_capped(reader, 128, &mut line)?;
    // Tolerate chunk extensions (`;`-separated) even though this server
    // never writes them.
    let size_text = line.trim_end().split(';').next().unwrap_or("").trim();
    let len = usize::from_str_radix(size_text, 16).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad chunk size {size_text:?}"),
        )
    })?;
    if len > MAX_CHUNK_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "chunk too large",
        ));
    }
    if len == 0 {
        // Terminal chunk: consume (empty) trailer lines up to the blank.
        loop {
            let mut trailer = String::new();
            if read_line_capped(reader, 1024, &mut trailer)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed in chunk trailers",
                ));
            }
            if trailer.trim_end().is_empty() {
                return Ok(None);
            }
        }
    }
    let mut data = vec![0u8; len];
    reader.read_exact(&mut data)?;
    let mut crlf = [0u8; 2];
    reader.read_exact(&mut crlf)?;
    if &crlf != b"\r\n" {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "chunk not CRLF-terminated",
        ));
    }
    Ok(Some(data))
}

/// Size of the fixed header that prefixes every streamed frame record.
pub const FRAME_RECORD_HEADER: usize = 16;

/// The in-stream framing of one streamed frame: a 16-byte header —
/// flags `u32` LE (bit 0 = served from cache, bit 1 = skipped to the live
/// frontier, bit 2 = stale frontier re-serve under saturation, bit 3 =
/// rendered with degraded sampling, bit 4 = fetched from a sibling node's
/// cache), frame index `u64` LE, body length `u32` LE — followed by the
/// frame body. Each record is exactly one HTTP chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameRecord {
    /// The frame index this record carries.
    pub frame: u64,
    /// Body length in bytes.
    pub len: u32,
    /// Whether the frame was served from the cache.
    pub cached: bool,
    /// Whether a fallen-behind subscriber was skipped to the live frontier
    /// (the carried index is the frontier's, not the requested one).
    pub skipped: bool,
    /// Whether a saturated server re-served the channel's cached frontier
    /// instead of synthesizing (the pressure ladder's stale-serve rung; the
    /// carried index is the frontier's).
    pub stale: bool,
    /// Whether the frame was rendered with pressure-degraded (footprint)
    /// sampling instead of the session's requested exact mode.
    pub degraded: bool,
    /// Whether the frame came out of a sibling node's cache (the peer
    /// frame-cache lookup); implies `cached`.
    pub peer: bool,
}

impl FrameRecord {
    /// Encodes the fixed header.
    pub fn encode_header(&self) -> [u8; FRAME_RECORD_HEADER] {
        let mut h = [0u8; FRAME_RECORD_HEADER];
        let mut flags = 0u32;
        if self.cached {
            flags |= 1;
        }
        if self.skipped {
            flags |= 2;
        }
        if self.stale {
            flags |= 4;
        }
        if self.degraded {
            flags |= 8;
        }
        if self.peer {
            flags |= 16;
        }
        h[0..4].copy_from_slice(&flags.to_le_bytes());
        h[4..12].copy_from_slice(&self.frame.to_le_bytes());
        h[12..16].copy_from_slice(&self.len.to_le_bytes());
        h
    }

    /// Decodes the fixed header from the front of a chunk.
    pub fn decode_header(bytes: &[u8]) -> io::Result<FrameRecord> {
        if bytes.len() < FRAME_RECORD_HEADER {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frame record shorter than its header",
            ));
        }
        let flags = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes"));
        if flags & !0b1_1111 != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown frame record flags {flags:#x}"),
            ));
        }
        Ok(FrameRecord {
            frame: u64::from_le_bytes(bytes[4..12].try_into().expect("8 bytes")),
            len: u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")),
            cached: flags & 1 != 0,
            skipped: flags & 2 != 0,
            stale: flags & 4 != 0,
            degraded: flags & 8 != 0,
            peer: flags & 16 != 0,
        })
    }
}

/// Writes one frame record as one chunk: header + body, the body straight
/// from its shared buffer (zero copies on the delivery path).
pub fn write_frame_record(
    out: &mut impl Write,
    record: &FrameRecord,
    body: &[u8],
) -> io::Result<()> {
    debug_assert_eq!(record.len as usize, body.len());
    write_chunk_parts(out, &[&record.encode_header(), body])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_request_with_body() {
        let raw = b"POST /sessions HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let req = read_request(&mut BufReader::new(&raw[..]))
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/sessions");
        assert_eq!(req.body, b"abcd");
        assert!(req.keep_alive);
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let raw = b"GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n";
        let req = read_request(&mut BufReader::new(&raw[..]))
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive);
        let raw = b"GET /stats HTTP/1.0\r\n\r\n";
        let req = read_request(&mut BufReader::new(&raw[..]))
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn clean_eof_is_none_and_garbage_is_error() {
        assert!(read_request(&mut BufReader::new(&b""[..]))
            .unwrap()
            .is_none());
        assert!(read_request(&mut BufReader::new(&b"nonsense\r\n\r\n"[..])).is_err());
        let huge = format!("GET / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", 1 << 30);
        assert!(read_request(&mut BufReader::new(huge.as_bytes())).is_err());
    }

    #[test]
    fn oversized_head_lines_error_instead_of_buffering() {
        // A request line with no newline at all must fail at the cap, not
        // buffer indefinitely.
        let endless = vec![b'a'; 64 * 1024];
        assert!(read_request(&mut BufReader::new(&endless[..])).is_err());
        // Same for one enormous header line.
        let mut raw = b"GET / HTTP/1.1\r\nX-Big: ".to_vec();
        raw.extend(vec![b'b'; 64 * 1024]);
        assert!(read_request(&mut BufReader::new(&raw[..])).is_err());
        // Many medium headers overflowing the total budget also error.
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..64 {
            raw.extend(format!("X-{i}: {}\r\n", "c".repeat(512)).into_bytes());
        }
        raw.extend(b"\r\n");
        assert!(read_request(&mut BufReader::new(&raw[..])).is_err());
    }

    #[test]
    fn unannounced_post_body_is_length_required_not_desync() {
        // The body bytes sit right behind the head with no Content-Length:
        // parsing must stop with InvalidInput (-> 411 + close), NOT succeed
        // and leave the body to be parsed as the next request head.
        let raw = b"POST /sessions HTTP/1.1\r\nHost: x\r\n\r\n{\"field\": {\"kind\": \"shear\"}}";
        let err = read_request(&mut BufReader::new(&raw[..])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);

        // Same for PUT/PATCH.
        let raw = b"PUT /x HTTP/1.1\r\n\r\nbody";
        let err = read_request(&mut BufReader::new(&raw[..])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);

        // A chunked body is unframeable for this parser regardless of
        // buffering, so it is refused up front.
        let raw = b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nwxyz\r\n0\r\n\r\n";
        let err = read_request(&mut BufReader::new(&raw[..])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);

        // Transfer-Encoding alongside Content-Length is the classic
        // request-smuggling shape: honouring the length would leave the
        // chunk framing in the stream as a phantom next request, so it is
        // refused too.
        let raw = b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\nContent-Length: 5\r\n\r\n4\r\nwxyz\r\n0\r\n\r\n";
        let err = read_request(&mut BufReader::new(&raw[..])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn bodyless_post_without_content_length_is_accepted() {
        // `curl -X POST /shutdown` sends no body and no Content-Length;
        // that must keep working.
        let raw = b"POST /shutdown HTTP/1.1\r\nHost: x\r\n\r\n";
        let req = read_request(&mut BufReader::new(&raw[..]))
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert!(req.body.is_empty());
        // GETs never carry bodies; trailing buffered bytes are a pipelined
        // next request, not a desynced body.
        let raw = b"GET /stats HTTP/1.1\r\n\r\nGET /healthz HTTP/1.1\r\n\r\n";
        let mut reader = BufReader::new(&raw[..]);
        let first = read_request(&mut reader).unwrap().unwrap();
        assert_eq!(first.path, "/stats");
        let second = read_request(&mut reader).unwrap().unwrap();
        assert_eq!(second.path, "/healthz");
    }

    #[test]
    fn deadline_header_parses_and_bad_values_are_ignored() {
        let raw = b"GET /f HTTP/1.1\r\nX-Deadline-Ms: 250\r\n\r\n";
        let req = read_request(&mut BufReader::new(&raw[..]))
            .unwrap()
            .unwrap();
        assert_eq!(req.deadline_ms, Some(250));
        // Case-insensitive, like every other header.
        let raw = b"GET /f HTTP/1.1\r\nx-deadline-ms: 9\r\n\r\n";
        let req = read_request(&mut BufReader::new(&raw[..]))
            .unwrap()
            .unwrap();
        assert_eq!(req.deadline_ms, Some(9));
        // Advisory header: garbage is dropped, the request still parses.
        let raw = b"GET /f HTTP/1.1\r\nX-Deadline-Ms: soon\r\n\r\n";
        let req = read_request(&mut BufReader::new(&raw[..]))
            .unwrap()
            .unwrap();
        assert_eq!(req.deadline_ms, None);
        let raw = b"GET /f HTTP/1.1\r\n\r\n";
        let req = read_request(&mut BufReader::new(&raw[..]))
            .unwrap()
            .unwrap();
        assert_eq!(req.deadline_ms, None);
    }

    #[test]
    fn response_serializes_with_length_and_headers() {
        let resp = Response::bytes(200, vec![1, 2, 3]).with_header("X-Frame-Cache", "hit");
        let mut out = Vec::new();
        resp.write_to(&mut out, true).unwrap();
        let text = String::from_utf8_lossy(&out);
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.contains("X-Frame-Cache: hit\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(out.ends_with(&[1, 2, 3]));
    }

    #[test]
    fn error_envelope_is_json() {
        let resp = Response::error(503, "busy", "queue at watermark");
        let parsed = Json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(parsed.get("error").and_then(Json::as_str), Some("busy"));
    }

    #[test]
    fn chunks_round_trip_through_writer_and_reader() {
        let mut wire = Vec::new();
        write_chunk(&mut wire, b"hello").unwrap();
        write_chunk_parts(&mut wire, &[b"wor", b"ld"]).unwrap();
        write_chunk(&mut wire, &[0u8; 300]).unwrap();
        finish_chunked(&mut wire).unwrap();
        // The multi-part write frames as ONE chunk (the zero-copy record
        // shape), and sizes are hex.
        assert!(wire.starts_with(b"5\r\nhello\r\n5\r\nworld\r\n12c\r\n"));
        let mut reader = BufReader::new(&wire[..]);
        assert_eq!(read_chunk(&mut reader).unwrap().unwrap(), b"hello");
        assert_eq!(read_chunk(&mut reader).unwrap().unwrap(), b"world");
        assert_eq!(read_chunk(&mut reader).unwrap().unwrap(), vec![0u8; 300]);
        assert!(read_chunk(&mut reader).unwrap().is_none(), "terminal chunk");
        // The stream is back in sync: nothing left to read.
        assert!(read_chunk(&mut reader).is_err());
    }

    #[test]
    fn terminal_chunk_is_exactly_zero_crlf_crlf() {
        let mut wire = Vec::new();
        finish_chunked(&mut wire).unwrap();
        assert_eq!(wire, b"0\r\n\r\n");
        let mut reader = BufReader::new(&wire[..]);
        assert!(read_chunk(&mut reader).unwrap().is_none());
    }

    #[test]
    fn malformed_chunks_are_errors() {
        // Bad size line.
        let mut r = BufReader::new(&b"zz\r\nab\r\n"[..]);
        assert!(read_chunk(&mut r).is_err());
        // Chunk data not CRLF-terminated desyncs — refused.
        let mut r = BufReader::new(&b"2\r\nabXX"[..]);
        assert!(read_chunk(&mut r).is_err());
        // Truncated mid-data.
        let mut r = BufReader::new(&b"a\r\nab"[..]);
        assert!(read_chunk(&mut r).is_err());
        // Absurd size is rejected before any allocation.
        let mut r = BufReader::new(&b"fffffffff\r\n"[..]);
        assert!(read_chunk(&mut r).is_err());
    }

    #[test]
    fn frame_records_round_trip_as_single_chunks() {
        let body = vec![7u8; 64];
        let record = FrameRecord {
            frame: 42,
            len: body.len() as u32,
            cached: true,
            skipped: false,
            stale: false,
            degraded: false,
            peer: false,
        };
        let mut wire = Vec::new();
        write_frame_record(&mut wire, &record, &body).unwrap();
        finish_chunked(&mut wire).unwrap();
        let mut reader = BufReader::new(&wire[..]);
        let chunk = read_chunk(&mut reader).unwrap().unwrap();
        assert_eq!(chunk.len(), FRAME_RECORD_HEADER + body.len());
        let decoded = FrameRecord::decode_header(&chunk).unwrap();
        assert_eq!(decoded, record);
        assert_eq!(&chunk[FRAME_RECORD_HEADER..], &body[..]);
        assert!(read_chunk(&mut reader).unwrap().is_none());
        // All flag bits survive; unknown bits are refused.
        let skipped = FrameRecord {
            frame: u64::MAX,
            len: 0,
            cached: false,
            skipped: true,
            stale: true,
            degraded: true,
            peer: true,
        };
        assert_eq!(
            FrameRecord::decode_header(&skipped.encode_header()).unwrap(),
            skipped
        );
        let mut bad = skipped.encode_header();
        bad[0] |= 0x80;
        assert!(FrameRecord::decode_header(&bad).is_err());
        assert!(FrameRecord::decode_header(&[0u8; 8]).is_err());
    }

    #[test]
    fn stream_head_declares_chunked_and_no_content_length() {
        let mut out = Vec::new();
        let headers = vec![("X-Stream-From".to_string(), "3".to_string())];
        write_stream_head(&mut out, 200, &headers, true).unwrap();
        let text = String::from_utf8_lossy(&out);
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Transfer-Encoding: chunked\r\n"));
        assert!(text.contains("X-Stream-From: 3\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(!text.contains("Content-Length"));
        assert!(text.ends_with("\r\n\r\n"));
    }
}
