//! End-to-end tests of the two applications: the smog steering loop and the
//! DNS browsing loop, including the data-base record/playback path and the
//! Figure-2 skin-friction comparison.

use flowfield::particles::ParticleOptions;
use flowsim::{
    attachment_height, pattern_from_dns, record_dns_run, skin_friction_field, DataBrowser,
    DnsConfig, DnsSolver, SmogModel, SteeringCommand, SteeringQueue,
};
use softpipe::machine::MachineConfig;
use spotnoise::advect::PositionMode;
use spotnoise::config::{SpotKind, SynthesisConfig};
use spotnoise::dnc::synthesize_dnc;
use spotnoise::pipeline::{ExecutionMode, Pipeline};
use spotnoise::spot::generate_spots;

#[test]
fn smog_steering_loop_reacts_to_commands() {
    let mut model = SmogModel::new(27, 28, 2);
    let mut queue = SteeringQueue::new();
    // Run five frames, then triple emissions and run five more.
    for _ in 0..5 {
        model.step(0.2);
    }
    let mass_before = model.total_pollutant();
    queue.push(SteeringCommand::ScaleEmissions(3.0));
    let params = queue.apply_all(*model.params());
    model.set_params(params);
    for _ in 0..5 {
        model.step(0.2);
    }
    let mass_after = model.total_pollutant();
    assert!(mass_after > mass_before, "steering had no effect");
    assert!((model.params().emission_multiplier - 3.0).abs() < 1e-12);
}

#[test]
fn dns_browser_playback_feeds_spot_noise() {
    let mut solver = DnsSolver::new(DnsConfig {
        nx: 48,
        ny: 32,
        ..DnsConfig::small_test()
    });
    for _ in 0..60 {
        solver.step(0.02);
    }
    let mut browser = DataBrowser::in_memory();
    record_dns_run(&mut solver, &mut browser, 3, 5, 0.02).unwrap();
    assert_eq!(browser.len(), 3);
    assert!(browser.total_bytes() > 0);

    let cfg = SynthesisConfig {
        texture_size: 96,
        spot_count: 500,
        spot_kind: SpotKind::Bent { rows: 6, cols: 3 },
        ..SynthesisConfig::turbulence_paper()
    };
    let machine = MachineConfig::new(4, 2);
    let mut variances = Vec::new();
    for _ in 0..browser.len() {
        let (_, grid) = browser.next_frame().unwrap();
        let spots = generate_spots(
            cfg.spot_count,
            grid.domain(),
            cfg.intensity_amplitude,
            cfg.seed,
        );
        let out = synthesize_dnc(&grid, &spots, &cfg, &machine);
        assert!(out.texture.variance() > 0.0);
        variances.push(out.texture.variance());
    }
    // Playback wrapped around to frame 0 again.
    assert_eq!(browser.cursor(), 0);
    assert_eq!(variances.len(), 3);
}

#[test]
fn figure2_advected_mode_differs_from_default_mode() {
    let mut dns = DnsSolver::new(DnsConfig::small_test());
    for _ in 0..60 {
        dns.step(0.02);
    }
    let h = attachment_height(&dns);
    assert!((0.0..=1.0).contains(&h));
    let field = skin_friction_field(&pattern_from_dns(&dns), 48, 48);

    let cfg = SynthesisConfig {
        texture_size: 96,
        spot_count: 400,
        ..SynthesisConfig::small_test()
    };
    let render = |mode: PositionMode| {
        let mut pipeline = Pipeline::with_animator(
            cfg,
            ExecutionMode::Sequential,
            field.domain(),
            ParticleOptions {
                count: cfg.spot_count,
                mean_lifetime: 15,
                ..Default::default()
            },
            mode,
        );
        let mut frame = pipeline.advance(&field, 0.05, 0);
        for _ in 0..4 {
            frame = pipeline.advance(&field, 0.05, 0);
        }
        frame.display
    };
    let default_img = render(PositionMode::Random);
    let advected_img = render(PositionMode::Advected);
    // The two parameterisations produce visibly different textures (that is
    // the entire point of Figure 2).
    let mean_diff = default_img.absolute_difference(&advected_img) / (96.0 * 96.0);
    assert!(mean_diff > 1e-3, "modes indistinguishable: {mean_diff}");
}

#[test]
fn dns_wake_statistics_are_reported_per_frame() {
    let mut solver = DnsSolver::new(DnsConfig {
        nx: 48,
        ny: 32,
        ..DnsConfig::small_test()
    });
    let mut fluctuations = Vec::new();
    for _ in 0..3 {
        for _ in 0..30 {
            solver.step(0.02);
        }
        fluctuations.push(solver.wake_fluctuation());
    }
    assert_eq!(fluctuations.len(), 3);
    assert!(fluctuations.iter().all(|f| f.is_finite()));
    // The wake builds up over the run.
    assert!(fluctuations.last().unwrap() >= fluctuations.first().unwrap());
}
