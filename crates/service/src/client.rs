//! A small blocking HTTP client for the service.
//!
//! Used by the loopback load bench (`bench_service`), the integration tests
//! and in-process tooling. One [`ServiceClient`] holds one keep-alive
//! connection, so repeated frame fetches measure server latency rather than
//! TCP handshakes. Blocking reads carry a configurable deadline
//! ([`ServiceClient::connect_with_read_timeout`]) surfaced as
//! [`ClientError::TimedOut`], so a stalled server can never wedge a client
//! forever. [`ServiceClient::stream_frames`] reads the chunked
//! frame-streaming endpoint; a stream abandoned before its terminal chunk
//! leaves undrained chunks in the connection, so the client marks itself
//! desynced and refuses further requests — reconnect to recover.
//!
//! [`ClientPool`] shelves idle keep-alive connections per target address —
//! the router's proxy path and the node core's peer cache probes check
//! connections out, and drop reshelves them unless the connection is
//! desynced or was dropped mid-request.

use crate::cache::FrameKey;
use crate::http::{read_chunk, FrameRecord, FRAME_RECORD_HEADER};
use spotnoise::json::Json;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::ops::{Deref, DerefMut};
use std::sync::Mutex;
use std::time::Duration;

/// A parsed HTTP response.
#[derive(Debug, Clone)]
pub struct HttpReply {
    /// Status code.
    pub status: u16,
    /// Response headers, lower-cased names.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl HttpReply {
    /// The value of a header (name matched case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Parses the body as JSON.
    pub fn json(&self) -> Result<Json, String> {
        Json::parse(std::str::from_utf8(&self.body).map_err(|e| e.to_string())?)
    }
}

/// Client-side failure modes.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// A blocking read hit the configured deadline before the server
    /// replied — distinct from [`ClientError::Io`] so callers can retry or
    /// reconnect instead of treating a slow server as a broken one.
    TimedOut,
    /// The server shed the request (`503`: busy, deadline shed, or
    /// shutting down), carrying the parsed `Retry-After` hint when the
    /// server sent one.
    Busy {
        /// How long the server asked the client to wait before retrying.
        retry_after: Option<Duration>,
    },
    /// The server does not know the session (`404`).
    NotFound,
    /// Any other non-success status.
    Http(u16, String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::TimedOut => write!(f, "read deadline expired"),
            ClientError::Busy { .. } => write!(f, "server busy"),
            ClientError::NotFound => write!(f, "not found"),
            ClientError::Http(status, body) => write!(f, "http {status}: {body}"),
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        // `SO_RCVTIMEO` expiry surfaces as WouldBlock on Unix and TimedOut
        // on Windows; both mean "deadline", not "connection broken".
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ClientError::TimedOut,
            _ => ClientError::Io(e),
        }
    }
}

/// A fetched frame.
#[derive(Debug, Clone)]
pub struct FetchedFrame {
    /// Little-endian `f32` texels.
    pub bytes: Vec<u8>,
    /// The frame index the server rendered (from `X-Frame-Index`).
    pub frame: u64,
    /// Whether the frame was served from cache rather than synthesized —
    /// local or peer (`X-Frame-Cache` is `hit` or `peer`).
    pub cache_hit: bool,
    /// Whether the serving node fetched the frame from a sibling node's
    /// cache instead of rendering it (`X-Frame-Cache: peer`).
    pub peer: bool,
    /// Whether a saturated server served the channel's cached frontier
    /// instead of the requested index (`X-Frame-Stale`).
    pub stale: bool,
    /// Whether the frame was rendered under pressure-degraded footprint
    /// sampling (`X-Frame-Degraded`).
    pub degraded: bool,
    /// The identity of the node that served the frame (`X-Node-Id`), when
    /// the server advertises one.
    pub node: Option<String>,
}

/// Backoff parameters for [`ServiceClient::fetch_frame_with_retry`]:
/// jittered exponential backoff on `Busy`/`TimedOut`, honouring the
/// server's `Retry-After` hint when it is longer than the computed backoff.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Maximum attempts, the first request included (minimum 1).
    pub attempts: u32,
    /// Backoff before the first retry; each later retry doubles it.
    pub base: Duration,
    /// Upper bound any single backoff is clamped to (before jitter).
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 5,
            base: Duration::from_millis(10),
            cap: Duration::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `attempt` (0-based): exponential
    /// from `base`, clamped to `cap`, then scaled by a jitter factor in
    /// [0.5, 1.0) so a shed burst of clients does not retry in lockstep.
    fn backoff(&self, attempt: u32, rng: &mut u64) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.cap);
        // xorshift64*: cheap, seedable, good enough to spread retries.
        *rng ^= *rng << 13;
        *rng ^= *rng >> 7;
        *rng ^= *rng << 17;
        let unit = (rng.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64;
        exp.mul_f64(0.5 + unit / 2.0)
    }
}

/// One keep-alive connection to a running service.
pub struct ServiceClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Set when a chunked stream was abandoned before its terminal chunk:
    /// undrained chunks are still in the connection, so any further request
    /// would read stream data as its response head. Reconnect to recover.
    desynced: bool,
    /// Set while a request is in flight and cleared once its reply has been
    /// fully read. A connection dropped dirty (an error mid-request left
    /// unread reply bytes in the stream) must not be reshelved into a
    /// [`ClientPool`].
    dirty: bool,
    /// The address and deadlines the connection was opened with, kept so
    /// [`ServiceClient::reconnect`] can rebuild it in place.
    addr: SocketAddr,
    connect_timeout: Option<Duration>,
    read_timeout: Option<Duration>,
}

/// The default blocking-read deadline ([`ServiceClient::connect`]).
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(120);

impl ServiceClient {
    /// Connects to the server with the default read deadline.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        Self::connect_with_read_timeout(addr, Some(DEFAULT_READ_TIMEOUT))
    }

    /// Connects with an explicit blocking-read deadline (`None` blocks
    /// forever). Expiry surfaces as [`ClientError::TimedOut`] from the
    /// typed helpers.
    pub fn connect_with_read_timeout(
        addr: SocketAddr,
        timeout: Option<Duration>,
    ) -> io::Result<Self> {
        Self::connect_with_timeouts(addr, None, timeout)
    }

    /// Connects with both a TCP connect deadline and a blocking-read
    /// deadline (`None` for either blocks forever). The connect deadline is
    /// what keeps a peer probe against a dead sibling node from hanging a
    /// frame request.
    pub fn connect_with_timeouts(
        addr: SocketAddr,
        connect_timeout: Option<Duration>,
        read_timeout: Option<Duration>,
    ) -> io::Result<Self> {
        let stream = match connect_timeout {
            Some(deadline) => TcpStream::connect_timeout(&addr, deadline)?,
            None => TcpStream::connect(addr)?,
        };
        stream.set_nodelay(true)?;
        stream.set_read_timeout(read_timeout)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(ServiceClient {
            reader,
            writer: stream,
            desynced: false,
            dirty: false,
            addr,
            connect_timeout,
            read_timeout,
        })
    }

    /// Changes the blocking-read deadline of the live connection (`None`
    /// blocks forever).
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.read_timeout = timeout;
        self.writer.set_read_timeout(timeout)
    }

    /// Drops the connection and opens a fresh one to the same address with
    /// the same read deadline. This is the recovery path for
    /// [`ClientError::TimedOut`] (the late reply would desync the old
    /// keep-alive connection) and for a desynced client.
    pub fn reconnect(&mut self) -> io::Result<()> {
        *self = Self::connect_with_timeouts(self.addr, self.connect_timeout, self.read_timeout)?;
        Ok(())
    }

    fn check_synced(&self) -> io::Result<()> {
        if self.desynced {
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "connection desynced by an abandoned frame stream; reconnect",
            ));
        }
        Ok(())
    }

    fn write_request_head(
        &mut self,
        method: &str,
        path: &str,
        extra_headers: &[(&str, String)],
        body: &[u8],
    ) -> io::Result<()> {
        use std::fmt::Write as _;
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: spotnoise\r\n");
        for (name, value) in extra_headers {
            let _ = write!(head, "{name}: {value}\r\n");
        }
        let _ = write!(head, "Content-Length: {}\r\n\r\n", body.len());
        self.writer.write_all(head.as_bytes())?;
        self.writer.write_all(body)?;
        self.writer.flush()
    }

    /// Reads a response's status line and headers (not its body).
    fn read_reply_head(&mut self) -> io::Result<(u16, Vec<(String, String)>)> {
        let mut status_line = String::new();
        if self.reader.read_line(&mut status_line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line {status_line:?}"),
                )
            })?;
        let mut headers = Vec::new();
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-headers",
                ));
            }
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
            }
        }
        Ok((status, headers))
    }

    /// Sends one request and reads the full (fixed-length) response.
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<HttpReply> {
        self.request_with_headers(method, path, &[], body)
    }

    /// [`ServiceClient::request`] with extra request headers (e.g.
    /// `X-Deadline-Ms`).
    pub fn request_with_headers(
        &mut self,
        method: &str,
        path: &str,
        extra_headers: &[(&str, String)],
        body: &[u8],
    ) -> io::Result<HttpReply> {
        self.check_synced()?;
        self.dirty = true;
        self.write_request_head(method, path, extra_headers, body)?;
        let (status, headers) = self.read_reply_head()?;
        let mut content_length = 0usize;
        for (name, value) in &headers {
            if name == "content-length" {
                content_length = value.parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                })?;
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        self.dirty = false;
        Ok(HttpReply {
            status,
            headers,
            body,
        })
    }

    fn expect_success(reply: HttpReply) -> Result<HttpReply, ClientError> {
        match reply.status {
            200 | 201 | 204 => Ok(reply),
            404 => Err(ClientError::NotFound),
            503 => Err(ClientError::Busy {
                retry_after: reply
                    .header("retry-after")
                    .and_then(|v| v.trim().parse::<u64>().ok())
                    .map(Duration::from_secs),
            }),
            status => Err(ClientError::Http(
                status,
                String::from_utf8_lossy(&reply.body).into_owned(),
            )),
        }
    }

    /// Creates a session from a JSON spec body (empty for the default
    /// session) and returns its id.
    pub fn create_session(&mut self, spec_body: &str) -> Result<String, ClientError> {
        let reply =
            Self::expect_success(self.request("POST", "/sessions", spec_body.as_bytes())?)?;
        let doc = reply
            .json()
            .map_err(|e| ClientError::Http(reply.status, e))?;
        doc.get("session")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ClientError::Http(reply.status, "no session id in reply".to_string()))
    }

    fn frame_from_reply(reply: HttpReply) -> Result<FetchedFrame, ClientError> {
        let cache = reply.header("x-frame-cache");
        let peer = cache == Some("peer");
        let cache_hit = peer || cache == Some("hit");
        let frame = reply
            .header("x-frame-index")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let stale = reply.header("x-frame-stale") == Some("1");
        let degraded = reply.header("x-frame-degraded") == Some("1");
        let node = reply.header("x-node-id").map(str::to_string);
        Ok(FetchedFrame {
            bytes: reply.body,
            frame,
            cache_hit,
            peer,
            stale,
            degraded,
            node,
        })
    }

    /// Fetches frame `index` of a session.
    pub fn fetch_frame(&mut self, session: &str, index: u64) -> Result<FetchedFrame, ClientError> {
        let path = format!("/sessions/{session}/frame/{index}");
        let reply = Self::expect_success(self.request("GET", &path, b"")?)?;
        Self::frame_from_reply(reply)
    }

    /// Probes the server's frame cache for a content-hash key
    /// (`GET /cache/<field>/<config>/<seed>/<frame>`, all hex): `Some`
    /// bytes when cached, `None` when not. This is the peer-lookup path —
    /// the probe is an uncounted peek on the remote cache and never
    /// triggers synthesis, so sibling nodes can consult each other without
    /// recursion or cache-statistics distortion.
    pub fn fetch_cached(&mut self, key: FrameKey) -> Result<Option<Vec<u8>>, ClientError> {
        let path = format!(
            "/cache/{:x}/{:x}/{:x}/{:x}",
            key.field, key.config, key.seed, key.frame
        );
        match Self::expect_success(self.request("GET", &path, b"")?) {
            Ok(reply) => Ok(Some(reply.body)),
            Err(ClientError::NotFound) => Ok(None),
            Err(err) => Err(err),
        }
    }

    /// Fetches frame `index` with an `X-Deadline-Ms` budget: the server
    /// sheds the request (a `Busy` error here) when the remaining budget
    /// cannot cover its current queue wait.
    pub fn fetch_frame_with_deadline(
        &mut self,
        session: &str,
        index: u64,
        deadline: Duration,
    ) -> Result<FetchedFrame, ClientError> {
        let path = format!("/sessions/{session}/frame/{index}");
        let headers = [("X-Deadline-Ms", deadline.as_millis().to_string())];
        let reply = Self::expect_success(self.request_with_headers("GET", &path, &headers, b"")?)?;
        Self::frame_from_reply(reply)
    }

    /// Fetches frame `index`, retrying `Busy` sheds and read timeouts under
    /// `policy`: jittered exponential backoff, never sleeping less than the
    /// server's `Retry-After` hint. A timeout additionally reconnects first
    /// — the late reply would desync the old keep-alive connection. Every
    /// other error (and exhaustion of the attempt budget) surfaces as-is.
    pub fn fetch_frame_with_retry(
        &mut self,
        session: &str,
        index: u64,
        policy: RetryPolicy,
    ) -> Result<FetchedFrame, ClientError> {
        let attempts = policy.attempts.max(1);
        let mut rng = index
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(std::process::id() as u64)
            | 1;
        let mut attempt = 0;
        loop {
            let err = match self.fetch_frame(session, index) {
                Ok(frame) => return Ok(frame),
                Err(err) => err,
            };
            attempt += 1;
            if attempt >= attempts {
                return Err(err);
            }
            match err {
                ClientError::Busy { retry_after } => {
                    let backoff = policy.backoff(attempt - 1, &mut rng);
                    std::thread::sleep(backoff.max(retry_after.unwrap_or(Duration::ZERO)));
                }
                ClientError::TimedOut => {
                    self.reconnect()?;
                    std::thread::sleep(policy.backoff(attempt - 1, &mut rng));
                }
                other => return Err(other),
            }
        }
    }

    /// Renders and returns the session's next natural frame.
    pub fn advance(&mut self, session: &str) -> Result<FetchedFrame, ClientError> {
        let path = format!("/sessions/{session}/advance");
        let reply = Self::expect_success(self.request("POST", &path, b"")?)?;
        Self::frame_from_reply(reply)
    }

    /// Steers a session to a new field; `field_body` is the field JSON
    /// object (e.g. `{"kind": "shear", "rate": 2.0}`).
    pub fn steer(&mut self, session: &str, field_body: &str) -> Result<(), ClientError> {
        let path = format!("/sessions/{session}/steer");
        Self::expect_success(self.request("POST", &path, field_body.as_bytes())?)?;
        Ok(())
    }

    /// Closes a session.
    pub fn close_session(&mut self, session: &str) -> Result<(), ClientError> {
        let path = format!("/sessions/{session}");
        Self::expect_success(self.request("DELETE", &path, b"")?)?;
        Ok(())
    }

    /// Fetches and parses `/stats`.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        let reply = Self::expect_success(self.request("GET", "/stats", b"")?)?;
        reply.json().map_err(|e| ClientError::Http(200, e))
    }

    /// Fetches `/metrics` (Prometheus text exposition).
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let reply = Self::expect_success(self.request("GET", "/metrics", b"")?)?;
        String::from_utf8(reply.body)
            .map_err(|e| ClientError::Http(200, format!("metrics body not UTF-8: {e}")))
    }

    /// Fetches and parses `/trace?last=N` (Chrome trace-event JSON).
    pub fn trace(&mut self, last: usize) -> Result<Json, ClientError> {
        let path = format!("/trace?last={last}");
        let reply = Self::expect_success(self.request("GET", &path, b"")?)?;
        reply.json().map_err(|e| ClientError::Http(200, e))
    }

    /// Asks the server to shut down.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        Self::expect_success(self.request("POST", "/shutdown", b"")?)?;
        Ok(())
    }

    /// Opens a frame stream: `GET /sessions/<id>/stream?from=N&count=k`.
    /// Frames arrive through [`FrameStream::next_frame`] as the server
    /// synthesizes them. Read the stream to its end (`Ok(None)`) — a
    /// [`FrameStream`] dropped early leaves undrained chunks in the
    /// connection, and the client marks itself desynced (every later
    /// request errors; reconnect to recover).
    pub fn stream_frames(
        &mut self,
        session: &str,
        from: u64,
        count: u64,
    ) -> Result<FrameStream<'_>, ClientError> {
        self.check_synced()?;
        self.dirty = true;
        let path = format!("/sessions/{session}/stream?from={from}&count={count}");
        self.write_request_head("GET", &path, &[], b"")?;
        let (status, headers) = self.read_reply_head()?;
        if status != 200 {
            // Error responses are fixed-length; drain the body to keep the
            // connection in sync, then map the status.
            let mut content_length = 0usize;
            for (name, value) in &headers {
                if name == "content-length" {
                    content_length = value.parse().unwrap_or(0);
                }
            }
            let mut body = vec![0u8; content_length];
            self.reader.read_exact(&mut body)?;
            self.dirty = false;
            return Err(
                match Self::expect_success(HttpReply {
                    status,
                    headers,
                    body,
                }) {
                    Err(err) => err,
                    Ok(reply) => ClientError::Http(reply.status, "unexpected stream status".into()),
                },
            );
        }
        let chunked = headers.iter().any(|(name, value)| {
            name == "transfer-encoding" && value.eq_ignore_ascii_case("chunked")
        });
        if !chunked {
            return Err(ClientError::Http(
                status,
                "stream response is not chunked".into(),
            ));
        }
        Ok(FrameStream {
            client: self,
            head: headers,
            finished: false,
        })
    }
}

/// One frame read off a [`FrameStream`].
#[derive(Debug, Clone)]
pub struct StreamedFrame {
    /// The frame index the record carries (the live frontier's index when
    /// `skipped` is set).
    pub frame: u64,
    /// Little-endian `f32` texels.
    pub bytes: Vec<u8>,
    /// Whether the server served the frame from its cache.
    pub cached: bool,
    /// Whether the server skipped this (fallen-behind) subscriber forward
    /// to the shared channel's live frontier.
    pub skipped: bool,
    /// Whether a saturated server served the channel's cached frontier.
    pub stale: bool,
    /// Whether the frame was rendered under degraded footprint sampling.
    pub degraded: bool,
    /// Whether the serving node fetched the frame from a sibling node's
    /// cache instead of rendering it.
    pub peer: bool,
}

/// A frame stream being read off a [`ServiceClient`] connection. Drain it
/// to `Ok(None)`; dropping it early desyncs the client.
pub struct FrameStream<'a> {
    client: &'a mut ServiceClient,
    head: Vec<(String, String)>,
    finished: bool,
}

impl FrameStream<'_> {
    /// A response header from the stream head (name matched
    /// case-insensitively) — e.g. `X-Stream-From`, `X-Stream-Count`,
    /// `X-Node-Id`. The router's stream relay forwards these intact.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.head
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Reads the next frame record; `Ok(None)` is the terminal chunk — the
    /// stream is complete and the connection is reusable.
    pub fn next_frame(&mut self) -> Result<Option<StreamedFrame>, ClientError> {
        if self.finished {
            return Ok(None);
        }
        let Some(chunk) = read_chunk(&mut self.client.reader)? else {
            self.finished = true;
            self.client.dirty = false;
            return Ok(None);
        };
        let record = FrameRecord::decode_header(&chunk)?;
        let body = &chunk[FRAME_RECORD_HEADER..];
        if body.len() != record.len as usize {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::InvalidData,
                "frame record length disagrees with its chunk",
            )));
        }
        Ok(Some(StreamedFrame {
            frame: record.frame,
            bytes: body.to_vec(),
            cached: record.cached,
            skipped: record.skipped,
            stale: record.stale,
            degraded: record.degraded,
            peer: record.peer,
        }))
    }
}

impl Drop for FrameStream<'_> {
    fn drop(&mut self) {
        if !self.finished {
            self.client.desynced = true;
        }
    }
}

/// Whether an I/O error means the keep-alive connection went stale while
/// shelved (the server closed it between requests) — the one failure a
/// pooled request retries once on a fresh connection, because the request
/// provably never reached the server.
fn is_stale_keepalive(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
    )
}

/// A pool of keep-alive [`ServiceClient`] connections to one address.
///
/// The router holds one pool per worker node and the node core holds one
/// per peer, so proxied requests and peer cache probes reuse warm
/// connections instead of paying a TCP handshake per request. Checked-out
/// connections reshelve on drop unless they are desynced or were dropped
/// mid-request ([`ServiceClient`] dirty tracking); the pooled request
/// helpers retry once on a stale shelved connection, sharing the
/// reconnect-on-[`ClientError::TimedOut`] recovery logic with the direct
/// client.
pub struct ClientPool {
    addr: SocketAddr,
    connect_timeout: Option<Duration>,
    read_timeout: Option<Duration>,
    max_idle: usize,
    idle: Mutex<Vec<ServiceClient>>,
}

impl ClientPool {
    /// Creates a pool for one target address with the default read deadline
    /// and up to 8 shelved idle connections.
    pub fn new(addr: SocketAddr) -> Self {
        ClientPool {
            addr,
            connect_timeout: None,
            read_timeout: Some(DEFAULT_READ_TIMEOUT),
            max_idle: 8,
            idle: Mutex::new(Vec::new()),
        }
    }

    /// Sets the TCP connect deadline for fresh connections.
    pub fn with_connect_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = Some(timeout);
        self
    }

    /// Sets the blocking-read deadline for fresh connections (`None`
    /// blocks forever).
    pub fn with_read_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Caps how many idle connections the pool shelves (excess connections
    /// are simply dropped on check-in).
    pub fn with_max_idle(mut self, max_idle: usize) -> Self {
        self.max_idle = max_idle;
        self
    }

    /// The address the pool connects to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// How many idle connections are currently shelved.
    pub fn idle(&self) -> usize {
        self.idle_shelf().len()
    }

    fn idle_shelf(&self) -> std::sync::MutexGuard<'_, Vec<ServiceClient>> {
        // A panic while a connection is checked *out* cannot poison the
        // shelf (the lock is never held across a request), so recovering
        // the guard is always sound.
        self.idle.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn connect_fresh(&self) -> io::Result<ServiceClient> {
        ServiceClient::connect_with_timeouts(self.addr, self.connect_timeout, self.read_timeout)
    }

    /// Checks a connection out of the pool: a shelved idle connection when
    /// one exists, a fresh connection otherwise. Dropping the returned
    /// [`PooledClient`] reshelves the connection if it is still clean.
    pub fn checkout(&self) -> io::Result<PooledClient<'_>> {
        if let Some(client) = self.idle_shelf().pop() {
            return Ok(PooledClient {
                client: Some(client),
                pool: self,
                reused: true,
            });
        }
        Ok(PooledClient {
            client: Some(self.connect_fresh()?),
            pool: self,
            reused: false,
        })
    }

    /// Sends one request through a pooled connection and reads the full
    /// response. A shelved connection the server closed while idle fails
    /// with a stale-keep-alive error before any reply byte arrives; that
    /// one case retries once on a guaranteed-fresh connection.
    pub fn request(&self, method: &str, path: &str, body: &[u8]) -> io::Result<HttpReply> {
        self.request_with_headers(method, path, &[], body)
    }

    /// [`ClientPool::request`] with extra request headers.
    pub fn request_with_headers(
        &self,
        method: &str,
        path: &str,
        extra_headers: &[(&str, String)],
        body: &[u8],
    ) -> io::Result<HttpReply> {
        let mut client = self.checkout()?;
        let reused = client.reused;
        match client.request_with_headers(method, path, extra_headers, body) {
            Ok(reply) => Ok(reply),
            Err(err) if reused && is_stale_keepalive(&err) => {
                drop(client);
                let mut fresh = PooledClient {
                    client: Some(self.connect_fresh()?),
                    pool: self,
                    reused: false,
                };
                fresh.request_with_headers(method, path, extra_headers, body)
            }
            Err(err) => Err(err),
        }
    }
}

/// A [`ServiceClient`] checked out of a [`ClientPool`]. Dereferences to the
/// client; on drop the connection returns to the pool's idle shelf unless
/// it is desynced, mid-request dirty, or the shelf is full.
pub struct PooledClient<'a> {
    client: Option<ServiceClient>,
    pool: &'a ClientPool,
    reused: bool,
}

impl PooledClient<'_> {
    /// Whether the connection came off the idle shelf (`true`) or was
    /// freshly opened for this checkout (`false`). A request that fails
    /// with a stale-keep-alive error on a reused connection is safe to
    /// retry once; the same failure on a fresh connection is a real error.
    pub fn reused(&self) -> bool {
        self.reused
    }

    /// Drops the connection instead of reshelving it.
    pub fn discard(mut self) {
        self.client = None;
    }
}

impl Deref for PooledClient<'_> {
    type Target = ServiceClient;
    fn deref(&self) -> &ServiceClient {
        self.client.as_ref().expect("pooled client present")
    }
}

impl DerefMut for PooledClient<'_> {
    fn deref_mut(&mut self) -> &mut ServiceClient {
        self.client.as_mut().expect("pooled client present")
    }
}

impl Drop for PooledClient<'_> {
    fn drop(&mut self) {
        if let Some(client) = self.client.take() {
            if client.desynced || client.dirty {
                return;
            }
            let mut shelf = self.pool.idle_shelf();
            if shelf.len() < self.pool.max_idle {
                shelf.push(client);
            }
        }
    }
}
