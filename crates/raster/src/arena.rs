//! Pooled per-frame buffers: zero steady-state allocation for synthesis.
//!
//! Every engine frame used to allocate (and fault in) fresh framebuffer-sized
//! buffers: the gather target, one partial texture per finished pipe, and the
//! command-stream `Vec`s the masters batch spot draws into. On a steady-state
//! server rendering frames back to back those allocations — megabytes of
//! `malloc` + page faults per frame at 512²+ — are pure overhead: the
//! buffers' sizes never change. A [`FrameArena`] recycles them instead:
//! textures and command vectors are checked out at the start of a frame and
//! checked back in when the gather has folded them (or the pipe has executed
//! them), so after the first frame the hot loop touches only warm,
//! already-mapped memory.
//!
//! The arena is shared across threads (masters, pipe workers and the gather
//! all check buffers in and out), so every method takes `&self` and the pools
//! live behind mutexes held only for the O(1) push/pop — never during
//! rendering. Reuse is strictly *allocation* reuse: a recycled texture is
//! re-zeroed (or fully overwritten) before it is observable, so outputs are
//! bit-identical with and without an arena — which the arena-reuse tests
//! assert.

use crate::pipe::RenderCommand;
use crate::texture::Texture;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Maximum buffers kept per pool; beyond this, returned buffers are dropped.
/// A frame needs one texture per process group plus the gather target, so 32
/// covers any plausible machine shape without hoarding memory after a burst.
const MAX_POOLED: usize = 32;

/// Counter snapshot of an arena (telemetry for tests and the bench).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Texture checkouts served by allocating fresh memory.
    pub texture_allocations: u64,
    /// Texture checkouts served from the pool.
    pub texture_reuses: u64,
    /// Command-vector checkouts served by allocating fresh memory.
    pub command_allocations: u64,
    /// Command-vector checkouts served from the pool.
    pub command_reuses: u64,
}

/// A shared pool of framebuffer-sized textures and render-command vectors.
#[derive(Debug, Default)]
pub struct FrameArena {
    textures: Mutex<Vec<Texture>>,
    commands: Mutex<Vec<Vec<RenderCommand>>>,
    texture_allocations: AtomicU64,
    texture_reuses: AtomicU64,
    command_allocations: AtomicU64,
    command_reuses: AtomicU64,
}

impl FrameArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        FrameArena::default()
    }

    /// Checks out a zeroed `width` × `height` texture (the [`Texture::new`]
    /// contract), reusing a pooled allocation when one is available.
    pub fn texture_zeroed(&self, width: usize, height: usize) -> Texture {
        self.texture(width, height, true)
    }

    /// Checks out a `width` × `height` texture whose contents are
    /// **unspecified** — for callers that overwrite every texel (partial
    /// readback copies, the additive gather target whose first fold is a
    /// wholesale copy). Skipping the clear keeps reuse cheaper than a fresh
    /// zeroed allocation even for the first touch.
    pub fn texture_uninit(&self, width: usize, height: usize) -> Texture {
        self.texture(width, height, false)
    }

    fn texture(&self, width: usize, height: usize, zero: bool) -> Texture {
        let pooled = self.textures.lock().expect("arena poisoned").pop();
        match pooled {
            Some(mut t) => {
                self.texture_reuses.fetch_add(1, Ordering::Relaxed);
                t.reset(width, height, zero);
                t
            }
            None => {
                self.texture_allocations.fetch_add(1, Ordering::Relaxed);
                Texture::new(width, height)
            }
        }
    }

    /// Returns a texture to the pool for a later checkout. Dimensions need
    /// not match future requests — [`Texture::reset`] reshapes in place.
    pub fn recycle_texture(&self, texture: Texture) {
        let mut pool = self.textures.lock().expect("arena poisoned");
        if pool.len() < MAX_POOLED {
            pool.push(texture);
        }
    }

    /// Checks out an empty command vector with at least `capacity` slots.
    pub fn commands(&self, capacity: usize) -> Vec<RenderCommand> {
        let pooled = self.commands.lock().expect("arena poisoned").pop();
        match pooled {
            Some(mut v) => {
                self.command_reuses.fetch_add(1, Ordering::Relaxed);
                debug_assert!(v.is_empty());
                if v.capacity() < capacity {
                    v.reserve(capacity - v.len());
                }
                v
            }
            None => {
                self.command_allocations.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(capacity)
            }
        }
    }

    /// Returns a command vector to the pool, clearing it first (the commands
    /// themselves are dropped; only the outer allocation is retained).
    pub fn recycle_commands(&self, mut commands: Vec<RenderCommand>) {
        commands.clear();
        let mut pool = self.commands.lock().expect("arena poisoned");
        if pool.len() < MAX_POOLED {
            pool.push(commands);
        }
    }

    /// Number of textures currently pooled.
    pub fn pooled_textures(&self) -> usize {
        self.textures.lock().expect("arena poisoned").len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            texture_allocations: self.texture_allocations.load(Ordering::Relaxed),
            texture_reuses: self.texture_reuses.load(Ordering::Relaxed),
            command_allocations: self.command_allocations.load(Ordering::Relaxed),
            command_reuses: self.command_reuses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn texture_checkout_reuses_the_allocation() {
        let arena = FrameArena::new();
        let mut t = arena.texture_zeroed(16, 16);
        t.fill(2.0);
        arena.recycle_texture(t);
        let t = arena.texture_zeroed(16, 16);
        assert!(t.data().iter().all(|&v| v == 0.0), "recycled texture dirty");
        let s = arena.stats();
        assert_eq!((s.texture_allocations, s.texture_reuses), (1, 1));
    }

    #[test]
    fn dirty_checkout_skips_the_clear_but_keeps_the_shape() {
        let arena = FrameArena::new();
        let mut t = arena.texture_uninit(8, 8);
        t.fill(1.0);
        arena.recycle_texture(t);
        let t = arena.texture_uninit(4, 16);
        assert_eq!((t.width(), t.height()), (4, 16));
        assert_eq!(t.data().len(), 64);
    }

    #[test]
    fn command_vectors_round_trip_empty() {
        let arena = FrameArena::new();
        let mut v = arena.commands(8);
        v.push(RenderCommand::Clear);
        arena.recycle_commands(v);
        let v = arena.commands(4);
        assert!(v.is_empty());
        assert!(v.capacity() >= 4);
        let s = arena.stats();
        assert_eq!((s.command_allocations, s.command_reuses), (1, 1));
    }

    #[test]
    fn pool_is_bounded() {
        let arena = FrameArena::new();
        for _ in 0..2 * MAX_POOLED {
            arena.recycle_texture(Texture::new(2, 2));
        }
        assert_eq!(arena.pooled_textures(), MAX_POOLED);
    }

    #[test]
    fn arena_is_shareable_across_threads() {
        let arena = std::sync::Arc::new(FrameArena::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let arena = std::sync::Arc::clone(&arena);
                scope.spawn(move || {
                    for _ in 0..16 {
                        let t = arena.texture_zeroed(8, 8);
                        arena.recycle_texture(t);
                    }
                });
            }
        });
        let s = arena.stats();
        assert_eq!(s.texture_allocations + s.texture_reuses, 64);
    }
}
