//! Stream-line plots — the other classical baseline.
//!
//! Together with arrow plots, stream lines are the "colored geometric
//! objects" style of flow visualization the introduction contrasts with
//! texture-based methods: accurate along the drawn curves but empty in
//! between. Used by the examples for side-by-side comparisons.

use flowfield::streamline::{trace_streamline, StreamlineOptions};
use flowfield::{Vec2, VectorField};
use softpipe::{Framebuffer, Rgb};

/// Parameters of a stream-line plot.
#[derive(Debug, Clone, Copy)]
pub struct StreamPlotOptions {
    /// Seed points along x.
    pub seeds_x: usize,
    /// Seed points along y.
    pub seeds_y: usize,
    /// Length of each stream line as a fraction of the domain width.
    pub length_fraction: f64,
    /// Line colour.
    pub color: Rgb,
}

impl Default for StreamPlotOptions {
    fn default() -> Self {
        StreamPlotOptions {
            seeds_x: 12,
            seeds_y: 12,
            length_fraction: 0.15,
            color: Rgb::new(200, 200, 255),
        }
    }
}

/// Draws stream lines seeded on a regular lattice. Returns the number of
/// polyline segments drawn.
pub fn stream_plot(
    fb: &mut Framebuffer,
    field: &dyn VectorField,
    opts: &StreamPlotOptions,
) -> usize {
    assert!(opts.seeds_x >= 1 && opts.seeds_y >= 1);
    let domain = field.domain();
    let length = domain.width() * opts.length_fraction;
    let trace_opts = StreamlineOptions::default();
    let mut segments = 0;
    for j in 0..opts.seeds_y {
        for i in 0..opts.seeds_x {
            let uv = Vec2::new(
                (i as f64 + 0.5) / opts.seeds_x as f64,
                (j as f64 + 0.5) / opts.seeds_y as f64,
            );
            let seed = domain.from_unit(uv);
            let sl = trace_streamline(field, seed, length, &trace_opts);
            for w in sl.points.windows(2) {
                let a = domain.to_unit(w[0]);
                let b = domain.to_unit(w[1]);
                fb.draw_line(
                    a.x * (fb.width() - 1) as f64,
                    a.y * (fb.height() - 1) as f64,
                    b.x * (fb.width() - 1) as f64,
                    b.y * (fb.height() - 1) as f64,
                    opts.color,
                );
                segments += 1;
            }
        }
    }
    segments
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowfield::analytic::{Uniform, Vortex};
    use flowfield::Rect;

    fn domain() -> Rect {
        Rect::new(Vec2::ZERO, Vec2::new(1.0, 1.0))
    }

    #[test]
    fn stream_plot_draws_segments_for_moving_flow() {
        let mut fb = Framebuffer::new(96, 96);
        let field = Vortex {
            omega: 1.0,
            center: Vec2::new(0.5, 0.5),
            domain: domain(),
        };
        let n = stream_plot(&mut fb, &field, &StreamPlotOptions::default());
        assert!(n > 100, "only {n} segments drawn");
        let lit = fb.pixels().iter().filter(|p| p.b > 0).count();
        assert!(lit > 200);
    }

    #[test]
    fn stagnant_flow_draws_no_segments() {
        let mut fb = Framebuffer::new(64, 64);
        let field = Uniform {
            velocity: Vec2::ZERO,
            domain: domain(),
        };
        let n = stream_plot(&mut fb, &field, &StreamPlotOptions::default());
        assert_eq!(n, 0);
    }

    #[test]
    fn seed_count_controls_density() {
        let field = Uniform {
            velocity: Vec2::new(1.0, 0.0),
            domain: domain(),
        };
        let mut fb_sparse = Framebuffer::new(64, 64);
        let mut fb_dense = Framebuffer::new(64, 64);
        let sparse = stream_plot(
            &mut fb_sparse,
            &field,
            &StreamPlotOptions {
                seeds_x: 3,
                seeds_y: 3,
                ..Default::default()
            },
        );
        let dense = stream_plot(
            &mut fb_dense,
            &field,
            &StreamPlotOptions {
                seeds_x: 10,
                seeds_y: 10,
                ..Default::default()
            },
        );
        assert!(dense > sparse);
    }
}
