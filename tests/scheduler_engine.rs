//! Cross-crate tests of the scheduler engine: on real application data the
//! dynamic-queue schedules must conserve work, keep tile composition
//! bit-identical to the static split, and redistribute leases when the spot
//! distribution is skewed.

use flowfield::Vec2;
use flowsim::{DnsConfig, DnsSolver, SmogModel};
use softpipe::machine::MachineConfig;
use spotnoise::config::{SpotKind, SynthesisConfig};
use spotnoise::dnc::{synthesize_dnc_with_context, synthesize_dnc_with_options};
use spotnoise::scheduler::{ScheduleMode, SchedulerOptions};
use spotnoise::spot::{generate_spots, Spot};
use spotnoise::synth::{synthesize_sequential_with_context, SynthesisContext};

fn mean_diff(a: &softpipe::Texture, b: &softpipe::Texture) -> f64 {
    a.absolute_difference(b) / a.data().len() as f64
}

#[test]
fn dynamic_spot_queue_matches_sequential_on_smog_wind_field() {
    let mut model = SmogModel::new(27, 28, 7);
    for _ in 0..3 {
        model.step(0.2);
    }
    let cfg = SynthesisConfig {
        texture_size: 128,
        spot_count: 500,
        spot_kind: SpotKind::Bent { rows: 8, cols: 3 },
        ..SynthesisConfig::atmospheric_paper()
    };
    let field = model.wind_field();
    let spots = generate_spots(cfg.spot_count, field.domain(), cfg.intensity_amplitude, 41);
    let ctx = SynthesisContext::new(field, &cfg);
    let seq = synthesize_sequential_with_context(field, &spots, &cfg, &ctx);
    let machine = MachineConfig::new(8, 4);
    let dnc = synthesize_dnc_with_options(
        field,
        &spots,
        &cfg,
        &machine,
        &ctx,
        &SchedulerOptions::dynamic(),
    );
    let d = mean_diff(&seq.texture, &dnc.texture);
    assert!(d < 1e-4, "mean texel difference {d}");
    // Work conserved and every group drained the queue.
    let total: usize = dnc.groups.iter().map(|g| g.spots).sum();
    assert_eq!(total, cfg.spot_count);
    assert!(dnc.groups.iter().all(|g| g.queue_exhausted));
    assert_eq!(
        dnc.total_pipe_work().vertices as usize,
        cfg.vertices_per_texture()
    );
}

#[test]
fn tiled_compose_bit_identical_across_schedules_on_dns_slice() {
    let mut dns = DnsSolver::new(DnsConfig {
        nx: 48,
        ny: 32,
        ..DnsConfig::small_test()
    });
    for _ in 0..40 {
        dns.step(0.02);
    }
    let slice = dns.rectilinear_slice();
    let cfg = SynthesisConfig {
        texture_size: 128,
        spot_count: 800,
        spot_kind: SpotKind::Bent { rows: 6, cols: 3 },
        use_tiling: true,
        ..SynthesisConfig::turbulence_paper()
    };
    let spots = generate_spots(cfg.spot_count, slice.domain(), cfg.intensity_amplitude, 3);
    let ctx = SynthesisContext::new(&slice, &cfg);
    // Masters only (4 procs, 4 pipes) so per-tile render order is
    // deterministic: the composed textures must agree bit for bit no matter
    // which pipe rendered which tile.
    let machine = MachineConfig::new(4, 4);
    let static_out = synthesize_dnc_with_context(&slice, &spots, &cfg, &machine, &ctx);
    let dynamic_out = synthesize_dnc_with_options(
        &slice,
        &spots,
        &cfg,
        &machine,
        &ctx,
        &SchedulerOptions::dynamic(),
    );
    assert_eq!(
        static_out.texture.absolute_difference(&dynamic_out.texture),
        0.0,
        "tiled compose diverged between static and dynamic scheduling"
    );
    assert_eq!(static_out.duplicated_spots, dynamic_out.duplicated_spots);
    assert_eq!(static_out.compose_texels, dynamic_out.compose_texels);
    assert!(dynamic_out.duplicated_spots > 0);
}

#[test]
fn dynamic_tile_queue_rebalances_a_clustered_spot_distribution() {
    // All spots cluster in one quadrant — the signal-dependent skew case.
    // A static one-tile-per-group split leaves three groups idle; with an
    // oversubscribed dynamic tile queue the loaded quadrant's tiles can be
    // spread over several pipes.
    let cfg = SynthesisConfig {
        use_tiling: true,
        spot_count: 600,
        ..SynthesisConfig::small_test()
    };
    let domain = flowfield::Rect::new(Vec2::ZERO, Vec2::new(1.0, 1.0));
    let field = flowfield::analytic::Vortex {
        omega: 1.0,
        center: Vec2::new(0.5, 0.5),
        domain,
    };
    // Cluster the spots into the lower-left quadrant.
    let spots: Vec<Spot> = generate_spots(cfg.spot_count, domain, 1.0, 77)
        .into_iter()
        .map(|mut s| {
            s.position = Vec2::new(s.position.x * 0.45, s.position.y * 0.45);
            s
        })
        .collect();
    let ctx = SynthesisContext::new(&field, &cfg);
    let seq = synthesize_sequential_with_context(&field, &spots, &cfg, &ctx);
    let machine = MachineConfig::new(4, 4);
    let opts = SchedulerOptions {
        mode: ScheduleMode::Dynamic { chunk: None },
        tiles: Some(16),
    };
    let out = synthesize_dnc_with_options(&field, &spots, &cfg, &machine, &ctx, &opts);
    let d = mean_diff(&seq.texture, &out.texture);
    assert!(d < 1e-4, "mean texel difference {d}");
    // All 16 tiles were leased exactly once across the 4 groups, and no
    // group stopped while tiles remained.
    let leases: u64 = out.groups.iter().map(|g| g.leases).sum();
    assert_eq!(leases, 16);
    assert!(out.groups.iter().all(|g| g.queue_exhausted));
    let total: usize = out.groups.iter().map(|g| g.spots).sum();
    assert_eq!(total, cfg.spot_count + out.duplicated_spots);
}
