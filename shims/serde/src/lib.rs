//! Offline stand-in for the `serde` crate.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types so the
//! real serde can be dropped in when a registry is available, but nothing in
//! the repository calls a serializer (JSON emission is hand-rolled in
//! `spotnoise-bench`). The traits are therefore pure markers and the derive
//! macros emit empty impls.

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
