//! Cross-crate correctness of the divide-and-conquer algorithm: on real
//! application data (not just analytic fields), the parallel executors must
//! reproduce the sequential texture, and the work accounting must be
//! consistent with the configuration.

use flowsim::{DnsConfig, DnsSolver, SmogModel};
use softpipe::machine::MachineConfig;
use spotnoise::config::{SpotKind, SynthesisConfig};
use spotnoise::dnc::{synthesize_cpu_only, synthesize_dnc_with_context};
use spotnoise::spot::generate_spots;
use spotnoise::synth::{synthesize_sequential_with_context, SynthesisContext};

fn mean_diff(a: &softpipe::Texture, b: &softpipe::Texture) -> f64 {
    a.absolute_difference(b) / a.data().len() as f64
}

#[test]
fn dnc_matches_sequential_on_smog_wind_field() {
    let mut model = SmogModel::new(27, 28, 21);
    for _ in 0..3 {
        model.step(0.2);
    }
    let cfg = SynthesisConfig {
        texture_size: 128,
        spot_count: 500,
        spot_kind: SpotKind::Bent { rows: 8, cols: 3 },
        ..SynthesisConfig::atmospheric_paper()
    };
    let field = model.wind_field();
    let spots = generate_spots(cfg.spot_count, field.domain(), cfg.intensity_amplitude, 77);
    let ctx = SynthesisContext::new(field, &cfg);
    let seq = synthesize_sequential_with_context(field, &spots, &cfg, &ctx);

    for machine in [
        MachineConfig::new(2, 1),
        MachineConfig::new(4, 2),
        MachineConfig::new(8, 4),
    ] {
        let dnc = synthesize_dnc_with_context(field, &spots, &cfg, &machine, &ctx);
        let d = mean_diff(&seq.texture, &dnc.texture);
        assert!(d < 1e-4, "machine {machine:?}: mean texel difference {d}");
        // Vertex accounting matches the configuration exactly (no spots lost
        // or duplicated with round-robin partitioning).
        assert_eq!(
            dnc.total_pipe_work().vertices as usize,
            cfg.vertices_per_texture()
        );
    }
}

#[test]
fn tiled_dnc_matches_sequential_on_dns_slice() {
    let mut dns = DnsSolver::new(DnsConfig {
        nx: 48,
        ny: 32,
        ..DnsConfig::small_test()
    });
    for _ in 0..40 {
        dns.step(0.02);
    }
    let slice = dns.rectilinear_slice();
    let cfg = SynthesisConfig {
        texture_size: 128,
        spot_count: 800,
        spot_kind: SpotKind::Bent { rows: 6, cols: 3 },
        use_tiling: true,
        ..SynthesisConfig::turbulence_paper()
    };
    let spots = generate_spots(cfg.spot_count, slice.domain(), cfg.intensity_amplitude, 3);
    let ctx = SynthesisContext::new(&slice, &cfg);
    let seq = synthesize_sequential_with_context(&slice, &spots, &cfg, &ctx);
    let machine = MachineConfig::new(8, 4);
    let dnc = synthesize_dnc_with_context(&slice, &spots, &cfg, &machine, &ctx);
    let d = mean_diff(&seq.texture, &dnc.texture);
    assert!(d < 1e-4, "mean texel difference {d}");
    // Tiling duplicated some boundary spots and reported them.
    assert!(dnc.duplicated_spots > 0);
    assert!(dnc.compose_texels > 0);
}

#[test]
fn cpu_only_rayon_matches_sequential_on_dns_slice() {
    let mut dns = DnsSolver::new(DnsConfig {
        nx: 48,
        ny: 32,
        ..DnsConfig::small_test()
    });
    for _ in 0..30 {
        dns.step(0.02);
    }
    let grid = dns.velocity_grid();
    let cfg = SynthesisConfig {
        texture_size: 128,
        spot_count: 600,
        ..SynthesisConfig::small_test()
    };
    let spots = generate_spots(cfg.spot_count, grid.domain(), cfg.intensity_amplitude, 5);
    let ctx = SynthesisContext::new(&grid, &cfg);
    let seq = synthesize_sequential_with_context(&grid, &spots, &cfg, &ctx);
    let out = synthesize_cpu_only(&grid, &spots, &cfg, 8);
    let d = mean_diff(&seq.texture, &out.texture);
    assert!(d < 1e-4, "mean texel difference {d}");
    // The CPU path reports through the same engine accounting as the
    // pipe-backed executors: per-group work, lease counts, no bus traffic.
    assert_eq!(out.groups.len(), 8);
    assert_eq!(out.total_cpu_work().spots, cfg.spot_count as u64);
    assert!(out.groups.iter().all(|g| g.queue_exhausted));
    assert_eq!(out.bus.total_bytes(), 0);
}
