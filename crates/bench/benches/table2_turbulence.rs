//! Table 2 — textures per second for the DNS turbulence workload, swept over
//! the paper's processor x pipe grid (scaled workload; see the `reproduce`
//! binary for the full-size, cost-model-based table).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use softpipe::machine::MachineConfig;
use spotnoise::dnc::synthesize_dnc;
use spotnoise_bench::turbulence_scaled;

fn bench_table2(c: &mut Criterion) {
    let workload = turbulence_scaled();
    let mut group = c.benchmark_group("table2_turbulence");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for machine in MachineConfig::paper_sweep() {
        let id = BenchmarkId::from_parameter(format!("{}p_{}g", machine.processors, machine.pipes));
        group.bench_with_input(id, &machine, |b, machine| {
            b.iter(|| {
                synthesize_dnc(
                    workload.field.as_ref(),
                    &workload.spots,
                    &workload.config,
                    machine,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
