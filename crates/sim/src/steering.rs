//! Computational steering support.
//!
//! "Simultaneously, there is also a growing demand for interactive computing
//! in which users can control various aspects of the application" — the smog
//! application is a *steering* application: parameter changes made by the
//! user must reach the running simulation between frames. This module holds
//! the steerable parameter set and a small command queue that decouples the
//! UI (or script) issuing changes from the simulation loop applying them.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The steerable parameters of the smog model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SmogParameters {
    /// Scales all emission sources (the "emission parameters" of the paper).
    pub emission_multiplier: f64,
    /// Scales the wind speed used for pollutant transport (the
    /// "meteorological parameters").
    pub wind_multiplier: f64,
    /// Diffusion coefficient of the pollutant.
    pub diffusion: f64,
    /// Linear decay (deposition/chemistry) rate of the pollutant.
    pub decay: f64,
}

impl Default for SmogParameters {
    fn default() -> Self {
        SmogParameters {
            emission_multiplier: 1.0,
            wind_multiplier: 1.0,
            diffusion: 0.05,
            decay: 0.02,
        }
    }
}

/// A single steering command.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SteeringCommand {
    /// Replace the whole parameter set.
    SetParameters(SmogParameters),
    /// Scale the emission multiplier by a factor.
    ScaleEmissions(f64),
    /// Scale the wind multiplier by a factor.
    ScaleWind(f64),
    /// Set the diffusion coefficient.
    SetDiffusion(f64),
    /// Set the decay rate.
    SetDecay(f64),
}

/// A FIFO queue of steering commands applied at frame boundaries.
#[derive(Debug, Clone, Default)]
pub struct SteeringQueue {
    commands: VecDeque<SteeringCommand>,
}

impl SteeringQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        SteeringQueue::default()
    }

    /// Enqueues a command (called from the interactive side).
    pub fn push(&mut self, cmd: SteeringCommand) {
        self.commands.push_back(cmd);
    }

    /// Number of pending commands.
    pub fn pending(&self) -> usize {
        self.commands.len()
    }

    /// Applies all pending commands to a parameter set, in order, and
    /// returns the updated parameters. The queue is drained.
    pub fn apply_all(&mut self, mut params: SmogParameters) -> SmogParameters {
        while let Some(cmd) = self.commands.pop_front() {
            params = apply(params, cmd);
        }
        params
    }
}

fn apply(mut params: SmogParameters, cmd: SteeringCommand) -> SmogParameters {
    match cmd {
        SteeringCommand::SetParameters(p) => params = p,
        SteeringCommand::ScaleEmissions(f) => params.emission_multiplier *= f,
        SteeringCommand::ScaleWind(f) => params.wind_multiplier *= f,
        SteeringCommand::SetDiffusion(d) => params.diffusion = d,
        SteeringCommand::SetDecay(d) => params.decay = d,
    }
    params
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_neutral() {
        let p = SmogParameters::default();
        assert_eq!(p.emission_multiplier, 1.0);
        assert_eq!(p.wind_multiplier, 1.0);
        assert!(p.diffusion > 0.0);
        assert!(p.decay > 0.0);
    }

    #[test]
    fn queue_applies_commands_in_order() {
        let mut q = SteeringQueue::new();
        q.push(SteeringCommand::ScaleEmissions(2.0));
        q.push(SteeringCommand::ScaleEmissions(3.0));
        q.push(SteeringCommand::SetDiffusion(0.5));
        assert_eq!(q.pending(), 3);
        let p = q.apply_all(SmogParameters::default());
        assert!((p.emission_multiplier - 6.0).abs() < 1e-12);
        assert_eq!(p.diffusion, 0.5);
        assert_eq!(q.pending(), 0);
    }

    #[test]
    fn set_parameters_overrides_previous_changes() {
        let mut q = SteeringQueue::new();
        q.push(SteeringCommand::ScaleWind(5.0));
        q.push(SteeringCommand::SetParameters(SmogParameters::default()));
        let p = q.apply_all(SmogParameters::default());
        assert_eq!(p, SmogParameters::default());
    }

    #[test]
    fn empty_queue_is_identity() {
        let mut q = SteeringQueue::new();
        let before = SmogParameters {
            emission_multiplier: 3.0,
            ..Default::default()
        };
        assert_eq!(q.apply_all(before), before);
    }

    #[test]
    fn individual_setters() {
        let p = apply(SmogParameters::default(), SteeringCommand::SetDecay(0.7));
        assert_eq!(p.decay, 0.7);
        let p = apply(p, SteeringCommand::ScaleWind(0.5));
        assert_eq!(p.wind_multiplier, 0.5);
    }
}
