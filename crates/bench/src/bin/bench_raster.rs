//! Rasterizer before/after benchmark: times the naive per-pixel reference
//! path against the span-walking fast path on representative spot workloads
//! and writes the results to `BENCH_raster.json`.
//!
//! ```text
//! cargo run --release -p spotnoise-bench --bin bench_raster -- [--out BENCH_raster.json]
//! ```

use std::path::PathBuf;

fn main() {
    let mut out = PathBuf::from("BENCH_raster.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                if let Some(path) = args.next() {
                    out = PathBuf::from(path);
                }
            }
            other => eprintln!("unknown argument: {other}"),
        }
    }
    // Fail on an unwritable destination before spending minutes measuring.
    if let Some(parent) = out.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).expect("cannot create output directory");
    }
    let report = spotnoise_bench::raster_bench::run_raster_bench();
    println!("{}", spotnoise_bench::raster_bench::format_report(&report));
    std::fs::write(&out, spotnoise_bench::raster_bench::report_to_json(&report))
        .expect("write BENCH_raster.json");
    println!("wrote {}", out.display());
}
