//! Partitioning the spot collection over process groups.
//!
//! The divide-and-conquer algorithm rests on two observations: spots are
//! independent, and the work per spot is (roughly) constant, so the spot
//! collection can be split into disjoint sets processed by different process
//! groups (paper §3). Two strategies are implemented, matching the paper's
//! implementation section:
//!
//! * [`partition_round_robin`] — spots are dealt over the groups like cards,
//!   which balances the load and requires the partial textures to be blended
//!   additively at the end;
//! * [`partition_tiled`] — spots are assigned by *location* to texture tiles,
//!   one tile per group. Spots whose footprint may straddle a tile boundary
//!   are assigned to every group they might affect (the paper's overlap
//!   handling), and the final texture is composed by copying each group's
//!   owned pixel region.

use crate::config::SynthesisConfig;
use crate::spot::{FieldToPixel, Spot};
use serde::{Deserialize, Serialize};
use softpipe::PixelTile;

/// Result of a tiled partition.
#[derive(Debug, Clone)]
pub struct TiledPartition {
    /// Per-group spot sets (group `g` owns `tiles[g]`).
    pub groups: Vec<Vec<Spot>>,
    /// Pixel region owned by each group.
    pub tiles: Vec<PixelTile>,
    /// Number of spot instances that were duplicated into more than one
    /// group because their footprint straddles a tile boundary (the cost of
    /// tiling the paper discusses).
    pub duplicated: usize,
}

/// Splits `spots` into `groups` sets by dealing them round-robin.
/// Every spot lands in exactly one group and group sizes differ by at most 1.
pub fn partition_round_robin(spots: &[Spot], groups: usize) -> Vec<Vec<Spot>> {
    assert!(groups > 0, "need at least one group");
    let mut out: Vec<Vec<Spot>> = (0..groups)
        .map(|g| Vec::with_capacity(spots.len() / groups + 1 + usize::from(g == 0)))
        .collect();
    for (i, spot) in spots.iter().enumerate() {
        out[i % groups].push(*spot);
    }
    out
}

/// Splits `spots` into `groups` contiguous chunks (preserving order). Used
/// inside a process group to distribute work over the master and its slaves.
pub fn partition_chunks(spots: &[Spot], groups: usize) -> Vec<Vec<Spot>> {
    chunk_slices(spots, groups)
        .into_iter()
        .map(<[Spot]>::to_vec)
        .collect()
}

/// Borrowing variant of [`partition_chunks`]: the same contiguous chunk
/// boundaries as sub-slices, without copying. The scheduler engine uses
/// this to split a leased tile's spot run over a group's processors.
pub fn chunk_slices(spots: &[Spot], groups: usize) -> Vec<&[Spot]> {
    assert!(groups > 0, "need at least one group");
    let mut out = Vec::with_capacity(groups);
    let base = spots.len() / groups;
    let extra = spots.len() % groups;
    let mut start = 0;
    for g in 0..groups {
        let len = base + usize::from(g < extra);
        out.push(&spots[start..start + len]);
        start += len;
    }
    out
}

/// Chooses a tile-grid shape `(nx, ny)` with `nx * ny == groups`, as close to
/// square as possible (e.g. 2 -> 2x1, 4 -> 2x2, 6 -> 3x2).
pub fn tile_grid_shape(groups: usize) -> (usize, usize) {
    assert!(groups > 0, "need at least one group");
    let mut best = (groups, 1);
    let mut best_score = usize::MAX;
    let mut nx = 1;
    while nx * nx <= groups {
        if groups.is_multiple_of(nx) {
            let ny = groups / nx;
            let score = ny - nx; // ny >= nx here
            if score < best_score {
                best_score = score;
                best = (ny, nx);
            }
        }
        nx += 1;
    }
    best
}

/// Options of the tiled partition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TilingOptions {
    /// Extra margin (in pixels) added to every spot's footprint when deciding
    /// which tiles it may affect; covers the stretching of spots by the flow.
    pub overlap_margin_pixels: f64,
}

impl TilingOptions {
    /// Derives the margin from the synthesis configuration: a spot stretched
    /// to the maximum elongation reaches `radius * max_stretch` pixels along
    /// the flow from its seed plus up to one radius across it; a couple of
    /// pixels of rasterization slack are added so that every fragment of a
    /// duplicated spot is guaranteed to fall inside a tile whose group
    /// received that spot.
    pub fn from_config(cfg: &SynthesisConfig) -> Self {
        TilingOptions {
            overlap_margin_pixels: cfg.spot_radius_pixels() * (cfg.max_stretch + 1.0) + 2.0,
        }
    }
}

/// Partitions spots by location into one texture tile per group, duplicating
/// spots that may affect more than one tile.
pub fn partition_tiled(
    spots: &[Spot],
    mapper: &FieldToPixel,
    groups: usize,
    options: &TilingOptions,
) -> TiledPartition {
    assert!(groups > 0, "need at least one group");
    let size = mapper.texture_size();
    let (nx, ny) = tile_grid_shape(groups);
    let tiles = PixelTile::grid(size, size, nx, ny);
    let margin = options.overlap_margin_pixels.max(0.0);
    let mut group_spots: Vec<Vec<Spot>> = vec![Vec::new(); groups];
    let mut duplicated = 0usize;
    for spot in spots {
        let p = mapper.to_pixel(spot.position);
        let lo_x = p.x - margin;
        let hi_x = p.x + margin;
        let lo_y = p.y - margin;
        let hi_y = p.y + margin;
        let mut owners = 0;
        for (g, tile) in tiles.iter().enumerate() {
            let overlaps = hi_x >= tile.x0 as f64
                && lo_x < tile.x1 as f64
                && hi_y >= tile.y0 as f64
                && lo_y < tile.y1 as f64;
            if overlaps {
                group_spots[g].push(*spot);
                owners += 1;
            }
        }
        // A spot exactly on the texture border can miss all tiles after the
        // margin test; assign it to the nearest tile so no spot is lost.
        if owners == 0 {
            let g = nearest_tile(&tiles, p.x, p.y);
            group_spots[g].push(*spot);
            owners = 1;
        }
        duplicated += owners - 1;
    }
    TiledPartition {
        groups: group_spots,
        tiles,
        duplicated,
    }
}

fn nearest_tile(tiles: &[PixelTile], x: f64, y: f64) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, t) in tiles.iter().enumerate() {
        let cx = (t.x0 + t.x1) as f64 * 0.5;
        let cy = (t.y0 + t.y1) as f64 * 0.5;
        let d = (cx - x) * (cx - x) + (cy - y) * (cy - y);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spot::generate_spots;
    use flowfield::{Rect, Vec2};

    fn domain() -> Rect {
        Rect::new(Vec2::ZERO, Vec2::new(1.0, 1.0))
    }

    fn spots(n: usize) -> Vec<Spot> {
        generate_spots(n, domain(), 1.0, 17)
    }

    #[test]
    fn round_robin_preserves_every_spot_exactly_once() {
        let s = spots(103);
        let parts = partition_round_robin(&s, 4);
        assert_eq!(parts.len(), 4);
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, 103);
        // Balanced to within one spot.
        let max = parts.iter().map(Vec::len).max().unwrap();
        let min = parts.iter().map(Vec::len).min().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn chunk_partition_preserves_order_and_count() {
        let s = spots(10);
        let parts = partition_chunks(&s, 3);
        assert_eq!(
            parts.iter().map(Vec::len).collect::<Vec<_>>(),
            vec![4, 3, 3]
        );
        let flat: Vec<Spot> = parts.into_iter().flatten().collect();
        for (a, b) in s.iter().zip(&flat) {
            assert_eq!(a.position, b.position);
        }
    }

    #[test]
    fn chunk_slices_match_owned_chunk_boundaries() {
        let s = spots(23);
        for groups in 1..6 {
            let owned = partition_chunks(&s, groups);
            let borrowed = chunk_slices(&s, groups);
            assert_eq!(owned.len(), borrowed.len());
            for (o, b) in owned.iter().zip(&borrowed) {
                assert_eq!(o.as_slice().len(), b.len());
                for (x, y) in o.iter().zip(*b) {
                    assert_eq!(x.position, y.position);
                }
            }
        }
    }

    #[test]
    fn single_group_partition_is_identity() {
        let s = spots(20);
        let rr = partition_round_robin(&s, 1);
        assert_eq!(rr.len(), 1);
        assert_eq!(rr[0].len(), 20);
    }

    #[test]
    fn tile_grid_shapes_are_near_square() {
        assert_eq!(tile_grid_shape(1), (1, 1));
        assert_eq!(tile_grid_shape(2), (2, 1));
        assert_eq!(tile_grid_shape(4), (2, 2));
        assert_eq!(tile_grid_shape(6), (3, 2));
        assert_eq!(tile_grid_shape(8), (4, 2));
        let (nx, ny) = tile_grid_shape(12);
        assert_eq!(nx * ny, 12);
        assert!(nx >= ny);
    }

    #[test]
    fn tiled_partition_covers_all_spots_and_reports_duplicates() {
        let cfg = SynthesisConfig::small_test();
        let mapper = FieldToPixel::new(domain(), cfg.texture_size);
        let s = spots(500);
        let opts = TilingOptions::from_config(&cfg);
        let part = partition_tiled(&s, &mapper, 4, &opts);
        assert_eq!(part.groups.len(), 4);
        assert_eq!(part.tiles.len(), 4);
        let total: usize = part.groups.iter().map(Vec::len).sum();
        // Every spot appears at least once; the surplus equals the reported
        // duplicate count.
        assert_eq!(total, 500 + part.duplicated);
        assert!(part.duplicated > 0, "expected some boundary spots");
    }

    #[test]
    fn zero_margin_tiling_never_duplicates() {
        let cfg = SynthesisConfig::small_test();
        let mapper = FieldToPixel::new(domain(), cfg.texture_size);
        let s = spots(300);
        let opts = TilingOptions {
            overlap_margin_pixels: 0.0,
        };
        let part = partition_tiled(&s, &mapper, 4, &opts);
        let total: usize = part.groups.iter().map(Vec::len).sum();
        assert_eq!(total, 300 + part.duplicated);
        // With zero margin a spot can only fall into the tile containing it
        // (boundary coincidences aside, duplication is minimal).
        assert!(part.duplicated <= 5, "duplicated {}", part.duplicated);
    }

    #[test]
    fn larger_margin_duplicates_more() {
        let cfg = SynthesisConfig::small_test();
        let mapper = FieldToPixel::new(domain(), cfg.texture_size);
        let s = spots(400);
        let small = partition_tiled(
            &s,
            &mapper,
            4,
            &TilingOptions {
                overlap_margin_pixels: 2.0,
            },
        );
        let large = partition_tiled(
            &s,
            &mapper,
            4,
            &TilingOptions {
                overlap_margin_pixels: 20.0,
            },
        );
        assert!(large.duplicated > small.duplicated);
    }

    #[test]
    fn spots_assigned_to_tile_containing_them() {
        let cfg = SynthesisConfig::small_test();
        let mapper = FieldToPixel::new(domain(), cfg.texture_size);
        // A spot at the centre of the lower-left quadrant.
        let spot = Spot {
            position: Vec2::new(0.25, 0.25),
            intensity: 1.0,
        };
        let part = partition_tiled(
            &[spot],
            &mapper,
            4,
            &TilingOptions {
                overlap_margin_pixels: 1.0,
            },
        );
        // Exactly one group received it and that group's tile contains the
        // spot's pixel position.
        let owners: Vec<usize> = part
            .groups
            .iter()
            .enumerate()
            .filter(|(_, g)| !g.is_empty())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(owners.len(), 1);
        let p = mapper.to_pixel(spot.position);
        assert!(part.tiles[owners[0]].contains(p.x as usize, p.y as usize));
    }

    #[test]
    fn four_corner_junction_spot_is_duplicated_into_all_four_tiles() {
        // A spot centred exactly on the meeting point of a 2x2 tile grid
        // must be handed to every one of the four tiles its margin touches.
        let cfg = SynthesisConfig::small_test();
        let mapper = FieldToPixel::new(domain(), cfg.texture_size); // 128 px
        let spot = Spot {
            position: Vec2::new(0.5, 0.5), // pixel (64, 64): the 2x2 junction
            intensity: 1.0,
        };
        let part = partition_tiled(
            &[spot],
            &mapper,
            4,
            &TilingOptions {
                overlap_margin_pixels: 3.0,
            },
        );
        assert_eq!(part.duplicated, 3, "expected 4 owners (3 duplicates)");
        assert!(
            part.groups.iter().all(|g| g.len() == 1),
            "every tile must receive the junction spot: {:?}",
            part.groups.iter().map(Vec::len).collect::<Vec<_>>()
        );
    }

    #[test]
    fn straddling_spots_land_in_exactly_the_tiles_they_overlap() {
        // Each spot's expected owner set is recomputed here from its margin
        // box; the partition must reproduce it exactly — no owner missing,
        // no spurious owner.
        let cfg = SynthesisConfig::small_test();
        let size = cfg.texture_size; // 128
        let mapper = FieldToPixel::new(domain(), size);
        let margin = 5.0;
        // Interior, vertical-boundary straddler, horizontal-boundary
        // straddler, junction, and a corner-of-texture spot.
        let cases = [
            Vec2::new(0.25, 0.25),
            Vec2::new(0.5, 0.2),
            Vec2::new(0.8, 0.5),
            Vec2::new(0.5, 0.5),
            Vec2::new(0.001, 0.001),
        ];
        for position in cases {
            let spot = Spot {
                position,
                intensity: 1.0,
            };
            let part = partition_tiled(
                &[spot],
                &mapper,
                4,
                &TilingOptions {
                    overlap_margin_pixels: margin,
                },
            );
            let owners: Vec<usize> = part
                .groups
                .iter()
                .enumerate()
                .filter(|(_, g)| !g.is_empty())
                .map(|(i, _)| i)
                .collect();
            let p = mapper.to_pixel(position);
            let expected: Vec<usize> = part
                .tiles
                .iter()
                .enumerate()
                .filter(|(_, t)| {
                    p.x + margin >= t.x0 as f64
                        && p.x - margin < t.x1 as f64
                        && p.y + margin >= t.y0 as f64
                        && p.y - margin < t.y1 as f64
                })
                .map(|(i, _)| i)
                .collect();
            assert_eq!(
                owners, expected,
                "spot at {position:?} (pixel {p:?}) assigned to the wrong tiles"
            );
            assert_eq!(part.duplicated, owners.len() - 1);
        }
    }

    #[test]
    fn oversubscribed_tile_partition_keeps_per_tile_consistency() {
        // More tiles than process groups (the dynamic tile queue's food):
        // the per-tile accounting must stay exact.
        let cfg = SynthesisConfig::small_test();
        let mapper = FieldToPixel::new(domain(), cfg.texture_size);
        let s = spots(300);
        let opts = TilingOptions::from_config(&cfg);
        let part = partition_tiled(&s, &mapper, 8, &opts);
        assert_eq!(part.tiles.len(), 8);
        assert_eq!(part.groups.len(), 8);
        let total: usize = part.groups.iter().map(Vec::len).sum();
        assert_eq!(total, 300 + part.duplicated);
    }

    #[test]
    #[should_panic(expected = "at least one group")]
    fn zero_groups_rejected() {
        let _ = partition_round_robin(&spots(3), 0);
    }
}
