//! # spotnoise-service — the multi-session synthesis server
//!
//! The paper's whole point is *interactive* spot noise: users steer a
//! running simulation and receive freshly synthesized textures every frame.
//! This crate is the layer that serves that workload to many concurrent
//! clients — the master/slave service topology the paper runs on the Onyx2,
//! lifted into a long-lived server process over the
//! [`Scheduler`](spotnoise::scheduler::Scheduler) engine:
//!
//! * [`session`] — the session registry: one
//!   [`Pipeline`](spotnoise::pipeline::Pipeline) per session, keyed ids,
//!   create/advance/steer/close, idle eviction;
//! * [`channel`] — shared-field broadcast: one advected spot population and
//!   one synthesis clock per distinct `(field, config, seed)` feeding every
//!   subscribed session, so synthesis cost is O(fields) while delivery is a
//!   fan-out of cached `Arc` frames (steering a shared session forks it
//!   into a private one);
//! * [`cache`] — an LRU frame cache keyed by
//!   `(field hash, config hash, seed, frame index)`, so repeated or
//!   steered-back requests skip synthesis entirely;
//! * [`queue`] — admission control: bounded depth, per-session fairness,
//!   shed-with-`503 Busy` beyond a watermark so overload degrades instead
//!   of OOMing;
//! * [`pressure`] — the graceful-degradation ladder: a tri-state
//!   [`PressureGauge`](pressure::PressureGauge) over queue depth and
//!   queue-wait latency that disables channel look-ahead when elevated and
//!   serves stale frontiers / drops to footprint sampling when saturated,
//!   so overload degrades *quality* before it degrades *availability*;
//! * [`http`] + [`server`] — a std-only HTTP/1.1 front end over
//!   [`std::net::TcpListener`] with endpoints for session CRUD, frame fetch
//!   (raw little-endian `f32` texture bytes), `/stats` (JSON), `/metrics`
//!   (Prometheus text over [`spotnoise::telemetry`] histograms) and
//!   `/trace` (Chrome trace-event JSON from the frame-lifecycle span ring);
//! * [`client`] — the blocking loopback client the load bench and the
//!   integration tests drive the server with;
//! * [`spec`] — field/session specifications and their stable content
//!   hashes.
//!
//! ## Frame model
//!
//! Frames of a session are deterministic: frame `i` is the texture after
//! `i + 1` fixed-`dt` advances from the seed, so a frame is a pure function
//! of `(field, config, index)`. Rewinding replays from the seed; steering
//! rebinds the field and restarts the clock. That purity is what makes the
//! cache key sound — and makes steering *back* to a previous field a pure
//! cache hit.
//!
//! ## Quick start
//!
//! ```no_run
//! use spotnoise_service::{serve, ServiceOptions};
//!
//! let handle = serve("127.0.0.1:7997", ServiceOptions::default()).unwrap();
//! println!("listening on http://{}", handle.addr());
//! handle.join(); // runs until POST /shutdown
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod channel;
pub mod client;
pub mod http;
pub mod pressure;
pub mod queue;
pub mod server;
pub mod session;
pub mod spec;

pub use cache::{FrameCache, FrameKey};
pub use channel::{ChannelKey, ChannelRegistry, ChannelSubscription, ChannelTotals, FieldChannel};
pub use client::{
    ClientError, FetchedFrame, FrameStream, RetryPolicy, ServiceClient, StreamedFrame,
};
pub use pressure::{PressureConfig, PressureCounters, PressureGauge, PressureState};
pub use queue::{AdmissionConfig, AdmissionError, FrameQueue, QueueStats};
pub use server::{
    serve, FrameResult, Service, ServiceError, ServiceHandle, ServiceOptions, ServiceTelemetry,
};
pub use session::{ServedFrame, Session, SessionRegistry};
pub use spec::{FieldSpec, SessionSpec};
