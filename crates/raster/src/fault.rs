//! Fault injection for chaos testing.
//!
//! The service's fault-containment layer (panic isolation, poisoned-pipe
//! discard, lock recovery) is only trustworthy if it is exercised, so this
//! module provides a process-global registry of *injected* faults that the
//! hot paths consult at well-known sites:
//!
//! * `"raster"` — inside a pipe worker's command execution (a panic here
//!   poisons the pipe and must be discarded by the pool),
//! * `"advect"` / `"synthesize"` / `"render"` — the pipeline stage
//!   checkpoints (a panic here unwinds through a frame job),
//! * `"queue"` / `"cache"` — the service's admission and cache paths
//!   (delays here inflate queue wait and drive the pressure ladder).
//!
//! A plan is installed either programmatically ([`install`] — what the
//! chaos tests use) or from the `SPOTNOISE_FAULT` environment variable
//! ([`install_from_env`] — what the server binary and the CI chaos leg
//! use). The spec grammar is a comma-separated rule list:
//!
//! ```text
//! SPOTNOISE_FAULT=panic:raster:0.02,delay:queue:5ms,delay:cache:200us:0.5
//! ```
//!
//! `panic:SITE:RATE` panics at `SITE` with probability `RATE` per
//! checkpoint; `delay:SITE:DURATION[:RATE]` sleeps for `DURATION`
//! (`us`/`ms`/`s` suffix) with probability `RATE` (default 1).
//!
//! When no plan is installed — the production configuration — every
//! checkpoint is a single relaxed atomic load, so the fault paths are free
//! for real traffic (the `telemetry_trace_overhead` bench banks the same
//! property for tracing).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// What an injected fault does when its rule fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Panic at the checkpoint (contained by the layer under test).
    Panic,
    /// Sleep for the given duration at the checkpoint.
    Delay(Duration),
}

/// One injection rule: a site, an action and a firing probability.
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// The checkpoint name this rule applies to (e.g. `"raster"`).
    pub site: String,
    /// What happens when the rule fires.
    pub kind: FaultKind,
    /// Probability in `(0, 1]` that a checkpoint visit fires the rule.
    pub rate: f64,
}

/// A set of injection rules, installed process-wide.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// The rules, checked in order at every matching checkpoint.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// Parses the `SPOTNOISE_FAULT` grammar (see the module docs). An empty
    /// or whitespace-only spec yields an empty plan.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut rules = Vec::new();
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let parts: Vec<&str> = entry.split(':').collect();
            let rule = match parts.as_slice() {
                ["panic", site] => FaultRule {
                    site: (*site).to_string(),
                    kind: FaultKind::Panic,
                    rate: 1.0,
                },
                ["panic", site, rate] => FaultRule {
                    site: (*site).to_string(),
                    kind: FaultKind::Panic,
                    rate: parse_rate(rate)?,
                },
                ["delay", site, duration] => FaultRule {
                    site: (*site).to_string(),
                    kind: FaultKind::Delay(parse_duration(duration)?),
                    rate: 1.0,
                },
                ["delay", site, duration, rate] => FaultRule {
                    site: (*site).to_string(),
                    kind: FaultKind::Delay(parse_duration(duration)?),
                    rate: parse_rate(rate)?,
                },
                _ => return Err(format!("unparseable fault rule {entry:?}")),
            };
            if rule.site.is_empty() {
                return Err(format!("fault rule {entry:?} has an empty site"));
            }
            rules.push(rule);
        }
        Ok(FaultPlan { rules })
    }
}

fn parse_rate(text: &str) -> Result<f64, String> {
    let rate: f64 = text
        .parse()
        .map_err(|_| format!("fault rate {text:?} is not a number"))?;
    if rate > 0.0 && rate <= 1.0 {
        Ok(rate)
    } else {
        Err(format!("fault rate {rate} out of (0, 1]"))
    }
}

fn parse_duration(text: &str) -> Result<Duration, String> {
    let (digits, unit): (&str, fn(u64) -> Duration) = if let Some(d) = text.strip_suffix("us") {
        (d, Duration::from_micros)
    } else if let Some(d) = text.strip_suffix("ms") {
        (d, Duration::from_millis)
    } else if let Some(d) = text.strip_suffix('s') {
        (d, Duration::from_secs)
    } else {
        return Err(format!("fault duration {text:?} needs a us/ms/s suffix"));
    };
    digits
        .parse()
        .map(unit)
        .map_err(|_| format!("fault duration {text:?} is not a whole number"))
}

/// Fast-path gate: checked with one relaxed load at every checkpoint.
static ACTIVE: AtomicBool = AtomicBool::new(false);

/// Monotonic count of panics this module has injected.
static PANICS: AtomicU64 = AtomicU64::new(0);

/// Monotonic count of delays this module has injected.
static DELAYS: AtomicU64 = AtomicU64::new(0);

/// Deterministic-enough xorshift state for firing probabilities. Seeded
/// lazily; chaos runs care about the *rate*, not the sequence.
static RNG: AtomicU64 = AtomicU64::new(0x9e3779b97f4a7c15);

fn plan_slot() -> &'static Mutex<Option<Arc<FaultPlan>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<FaultPlan>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Installs a plan process-wide, replacing any previous one. Chaos tests
/// call this directly; servers call [`install_from_env`] at boot.
pub fn install(plan: FaultPlan) {
    let enabled = !plan.rules.is_empty();
    *crate::sync::lock_recover(plan_slot(), |_| {}) = enabled.then(|| Arc::new(plan));
    ACTIVE.store(enabled, Ordering::Release);
}

/// Removes the installed plan; every checkpoint reverts to the free path.
pub fn clear() {
    ACTIVE.store(false, Ordering::Release);
    *crate::sync::lock_recover(plan_slot(), |_| {}) = None;
}

/// Installs the plan described by `SPOTNOISE_FAULT`, if the variable is set
/// and parses. Returns whether a non-empty plan was installed; a malformed
/// spec is reported on stderr and ignored (a chaos knob must never take the
/// real service down).
pub fn install_from_env() -> bool {
    match std::env::var("SPOTNOISE_FAULT") {
        Ok(spec) => match FaultPlan::parse(&spec) {
            Ok(plan) => {
                let enabled = !plan.rules.is_empty();
                install(plan);
                enabled
            }
            Err(e) => {
                eprintln!("ignoring SPOTNOISE_FAULT: {e}");
                false
            }
        },
        Err(_) => false,
    }
}

/// Whether a fault plan is currently installed.
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Panics injected so far (monotonic over the process lifetime).
pub fn injected_panics() -> u64 {
    PANICS.load(Ordering::Relaxed)
}

/// Delays injected so far (monotonic over the process lifetime).
pub fn injected_delays() -> u64 {
    DELAYS.load(Ordering::Relaxed)
}

fn chance(rate: f64) -> bool {
    if rate >= 1.0 {
        return true;
    }
    // One xorshift step per draw; contention-tolerant (a lost update just
    // reuses a draw, which only perturbs the effective rate marginally).
    let mut x = RNG.load(Ordering::Relaxed);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    RNG.store(x, Ordering::Relaxed);
    ((x >> 11) as f64 / (1u64 << 53) as f64) < rate
}

/// A fault checkpoint. Free (one relaxed load) when no plan is installed;
/// with a plan, fires every matching rule in order — sleeping for delays,
/// panicking for panics (the panic carries the site name so containment
/// layers can report it).
#[inline]
pub fn fire(site: &str) {
    if !ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    fire_slow(site);
}

#[cold]
fn fire_slow(site: &str) {
    let plan = crate::sync::lock_recover(plan_slot(), |_| {}).clone();
    let Some(plan) = plan else { return };
    for rule in plan.rules.iter().filter(|r| r.site == site) {
        if !chance(rule.rate) {
            continue;
        }
        match rule.kind {
            FaultKind::Delay(duration) => {
                DELAYS.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(duration);
            }
            FaultKind::Panic => {
                PANICS.fetch_add(1, Ordering::Relaxed);
                panic!("injected fault at site {site:?}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_grammar_round_trips() {
        let plan = FaultPlan::parse("panic:raster:0.02, delay:queue:5ms, delay:cache:200us:0.5")
            .expect("spec parses");
        assert_eq!(plan.rules.len(), 3);
        assert_eq!(plan.rules[0].site, "raster");
        assert_eq!(plan.rules[0].kind, FaultKind::Panic);
        assert!((plan.rules[0].rate - 0.02).abs() < 1e-12);
        assert_eq!(
            plan.rules[1].kind,
            FaultKind::Delay(Duration::from_millis(5))
        );
        assert!((plan.rules[1].rate - 1.0).abs() < 1e-12);
        assert_eq!(
            plan.rules[2].kind,
            FaultKind::Delay(Duration::from_micros(200))
        );
        assert_eq!(FaultPlan::parse("").expect("empty spec").rules.len(), 0);
        assert_eq!(FaultPlan::parse("panic:x").unwrap().rules[0].rate, 1.0);
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in [
            "panik:raster:0.1",
            "panic::0.1",
            "panic:raster:2.0",
            "panic:raster:0",
            "delay:queue:5",
            "delay:queue:xms",
            "panic",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
