//! The scientific-database browser.
//!
//! "A few weeks of computing can easily produce a few terabytes of data. A
//! data browser is being developed to analyse such scientific data bases. In
//! contrast to prerecorded video sequences, the data browser allows the user
//! to first select visualization mappings and then play through any part of
//! the data base." This module is that substrate: a store of time-stamped
//! DNS slices with record/playback access, in memory or on disk, plus the
//! bookkeeping (byte sizes, playback rate) the browsing application needs.
//! Only when playback exceeds a handful of frames per second can the user
//! track how the vortices evolve — which is why interactive spot noise is
//! needed in the first place.

use flowfield::io::{load_vector_grid, save_vector_grid};
use flowfield::RegularGrid;
#[cfg(test)]
use flowfield::Vec2;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::PathBuf;

/// Metadata describing one stored frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameInfo {
    /// Frame index within the data base.
    pub index: usize,
    /// Simulation time of the frame.
    pub time: f64,
    /// Approximate storage size of the frame in bytes.
    pub bytes: usize,
}

enum Storage {
    Memory(Vec<RegularGrid>),
    Disk { dir: PathBuf },
}

/// A time-series database of vector-field slices.
pub struct DataBrowser {
    storage: Storage,
    frames: Vec<FrameInfo>,
    cursor: usize,
}

impl DataBrowser {
    /// Creates an in-memory browser (fine for tests and small runs).
    pub fn in_memory() -> Self {
        DataBrowser {
            storage: Storage::Memory(Vec::new()),
            frames: Vec::new(),
            cursor: 0,
        }
    }

    /// Creates a browser persisting frames as files under `dir`.
    pub fn on_disk(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(DataBrowser {
            storage: Storage::Disk { dir },
            frames: Vec::new(),
            cursor: 0,
        })
    }

    /// Number of stored frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True when no frames have been recorded.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Metadata of all stored frames.
    pub fn frames(&self) -> &[FrameInfo] {
        &self.frames
    }

    /// Total size of the stored data base in bytes (the quantity that reaches
    /// terabytes for the real DNS).
    pub fn total_bytes(&self) -> usize {
        self.frames.iter().map(|f| f.bytes).sum()
    }

    /// Records a frame at simulation time `time`.
    pub fn record(&mut self, grid: &RegularGrid, time: f64) -> io::Result<usize> {
        let index = self.frames.len();
        let bytes = grid.nx() * grid.ny() * 2 * std::mem::size_of::<f64>();
        match &mut self.storage {
            Storage::Memory(frames) => frames.push(grid.clone()),
            Storage::Disk { dir } => {
                save_vector_grid(grid, frame_path(dir, index))?;
            }
        }
        self.frames.push(FrameInfo { index, time, bytes });
        Ok(index)
    }

    /// Loads frame `index`.
    pub fn load(&self, index: usize) -> io::Result<RegularGrid> {
        if index >= self.frames.len() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("frame {index} out of range ({} frames)", self.frames.len()),
            ));
        }
        match &self.storage {
            Storage::Memory(frames) => Ok(frames[index].clone()),
            Storage::Disk { dir } => load_vector_grid(frame_path(dir, index)),
        }
    }

    /// Seeks the playback cursor to `index` ("play through any part of the
    /// data base").
    pub fn seek(&mut self, index: usize) {
        self.cursor = index.min(self.frames.len().saturating_sub(1));
    }

    /// Current playback cursor.
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Loads the frame at the cursor and advances it, wrapping at the end.
    pub fn next_frame(&mut self) -> io::Result<(FrameInfo, RegularGrid)> {
        if self.is_empty() {
            return Err(io::Error::new(io::ErrorKind::NotFound, "empty data base"));
        }
        let index = self.cursor;
        let grid = self.load(index)?;
        let info = self.frames[index].clone();
        self.cursor = (self.cursor + 1) % self.frames.len();
        Ok((info, grid))
    }
}

fn frame_path(dir: &std::path::Path, index: usize) -> PathBuf {
    dir.join(format!("frame_{index:06}.grid"))
}

/// Convenience: runs a DNS solver for `frames * steps_per_frame` steps,
/// recording a slice every `steps_per_frame` steps. Returns the populated
/// browser. This is how the examples and benchmarks produce their data base.
pub fn record_dns_run(
    solver: &mut crate::dns::DnsSolver,
    browser: &mut DataBrowser,
    frames: usize,
    steps_per_frame: usize,
    dt: f64,
) -> io::Result<()> {
    for _ in 0..frames {
        for _ in 0..steps_per_frame {
            solver.step(dt);
        }
        browser.record(&solver.velocity_grid(), solver.time())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dns::{DnsConfig, DnsSolver};
    use flowfield::Rect;

    fn grid(value: f64) -> RegularGrid {
        RegularGrid::from_fn(8, 6, Rect::new(Vec2::ZERO, Vec2::new(1.0, 1.0)), |_| {
            Vec2::new(value, -value)
        })
    }

    #[test]
    fn in_memory_record_and_load() {
        let mut b = DataBrowser::in_memory();
        assert!(b.is_empty());
        b.record(&grid(1.0), 0.0).unwrap();
        b.record(&grid(2.0), 0.1).unwrap();
        assert_eq!(b.len(), 2);
        let g = b.load(1).unwrap();
        assert_eq!(g.node(0, 0), Vec2::new(2.0, -2.0));
        assert!(b.load(5).is_err());
        assert_eq!(b.total_bytes(), 2 * 8 * 6 * 16);
    }

    #[test]
    fn playback_wraps_and_seeks() {
        let mut b = DataBrowser::in_memory();
        for k in 0..3 {
            b.record(&grid(k as f64), k as f64 * 0.5).unwrap();
        }
        let (info, _) = b.next_frame().unwrap();
        assert_eq!(info.index, 0);
        let (info, _) = b.next_frame().unwrap();
        assert_eq!(info.index, 1);
        b.seek(2);
        let (info, _) = b.next_frame().unwrap();
        assert_eq!(info.index, 2);
        // Wraps to the beginning.
        let (info, _) = b.next_frame().unwrap();
        assert_eq!(info.index, 0);
    }

    #[test]
    fn empty_browser_playback_errors() {
        let mut b = DataBrowser::in_memory();
        assert!(b.next_frame().is_err());
    }

    #[test]
    fn disk_backed_roundtrip() {
        let dir = std::env::temp_dir().join(format!("spotnoise_browser_{}", std::process::id()));
        let mut b = DataBrowser::on_disk(&dir).unwrap();
        b.record(&grid(3.5), 1.0).unwrap();
        let g = b.load(0).unwrap();
        assert_eq!(g.node(2, 2), Vec2::new(3.5, -3.5));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_dns_run_populates_browser() {
        let mut solver = DnsSolver::new(DnsConfig {
            nx: 32,
            ny: 20,
            ..DnsConfig::small_test()
        });
        let mut b = DataBrowser::in_memory();
        record_dns_run(&mut solver, &mut b, 4, 3, 0.02).unwrap();
        assert_eq!(b.len(), 4);
        // Frame times are strictly increasing.
        let times: Vec<f64> = b.frames().iter().map(|f| f.time).collect();
        assert!(times.windows(2).all(|w| w[1] > w[0]));
        assert_eq!(solver.steps(), 12);
    }
}
