//! Calibrated cost model of the simulated graphics workstation.
//!
//! The reproduction does not have an SGI Onyx2 with InfiniteReality pipes, so
//! the *absolute* timing of the paper's tables is reproduced with a cost
//! model: every unit of work the pipeline performs (stream-line integration
//! steps, mesh vertices built on the CPU, vertices and fragments processed by
//! a pipe, state changes, texture blends, bytes moved over the bus) is
//! charged a calibrated number of simulated seconds. The calibration
//! constants in [`CostModel::onyx2`] were chosen so that the two workloads of
//! the paper land in the same regime as Tables 1 and 2: a single R10000
//! needs ~0.9 s of spot-shape computation for the atmospheric workload,
//! roughly four processors saturate one pipe, and the sequential gather/blend
//! step limits scaling at high pipe counts.
//!
//! Real wall-clock measurements of the host are reported *alongside* the
//! simulated numbers by the benchmark harness; see `EXPERIMENTS.md`.

use serde::{Deserialize, Serialize};

/// Work performed on a general-purpose processor for one spot (pipeline step
/// "advect particles" + spot shape computation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuWork {
    /// Stream-line integration steps (bent spots) or particle advection steps.
    pub streamline_steps: u64,
    /// Mesh vertices constructed and transformed in software.
    pub mesh_vertices: u64,
    /// Number of spots processed (fixed per-spot overhead).
    pub spots: u64,
}

impl CpuWork {
    /// Accumulates another work record.
    pub fn merge(&mut self, other: &CpuWork) {
        self.streamline_steps += other.streamline_steps;
        self.mesh_vertices += other.mesh_vertices;
        self.spots += other.spots;
    }
}

/// Work performed by a graphics pipe (pipeline step "generate texture").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipeWork {
    /// Vertices transformed by the pipe.
    pub vertices: u64,
    /// Fragments generated and blended.
    pub fragments: u64,
    /// State changes that forced a pipe synchronisation.
    pub state_changes: u64,
    /// Texels blended while gathering partial textures.
    pub blend_texels: u64,
}

impl PipeWork {
    /// Accumulates another work record.
    pub fn merge(&mut self, other: &PipeWork) {
        self.vertices += other.vertices;
        self.fragments += other.fragments;
        self.state_changes += other.state_changes;
        self.blend_texels += other.blend_texels;
    }
}

/// Per-unit simulated costs of the modelled machine (all in seconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// CPU seconds per stream-line integration step (RK4 + bilinear lookups).
    pub cpu_per_streamline_step: f64,
    /// CPU seconds per mesh vertex constructed/transformed in software.
    pub cpu_per_mesh_vertex: f64,
    /// Fixed CPU seconds per spot (bookkeeping, random numbers, dispatch).
    pub cpu_per_spot: f64,
    /// Pipe seconds per vertex.
    pub pipe_per_vertex: f64,
    /// Pipe seconds per fragment.
    pub pipe_per_fragment: f64,
    /// Pipe seconds per state change (geometry-processor synchronisation).
    pub pipe_per_state_change: f64,
    /// Pipe seconds per texel blended during texture gather.
    pub pipe_per_blend_texel: f64,
    /// Fixed seconds per frame of gather/blend bookkeeping (the constant part
    /// of the paper's `c` term).
    pub blend_fixed_overhead: f64,
    /// Bus bandwidth from processors to the graphics subsystem in bytes/s.
    pub bus_bytes_per_second: f64,
    /// Bytes transferred per vertex (position + texture coordinate, packed
    /// single precision — 16 bytes, which reproduces the paper's bandwidth
    /// estimates of ~21.8 MB and ~31 MB per texture).
    pub bytes_per_vertex: f64,
}

impl CostModel {
    /// Cost model calibrated against the paper's SGI Onyx2 with R10000
    /// processors and InfiniteReality pipes.
    pub fn onyx2() -> Self {
        CostModel {
            cpu_per_streamline_step: 1.0e-6,
            cpu_per_mesh_vertex: 0.6e-6,
            cpu_per_spot: 3.0e-6,
            pipe_per_vertex: 0.15e-6,
            pipe_per_fragment: 0.03e-6,
            pipe_per_state_change: 5.0e-6,
            pipe_per_blend_texel: 8.0e-8,
            blend_fixed_overhead: 0.01,
            bus_bytes_per_second: 800.0e6,
            bytes_per_vertex: 16.0,
        }
    }

    /// A hypothetical machine with a much faster graphics subsystem, used by
    /// the "different architectures may result in different implementations"
    /// ablation (spot transformation on the pipe becomes viable when the
    /// state-change cost shrinks).
    pub fn fast_pipe() -> Self {
        CostModel {
            pipe_per_vertex: 0.03e-6,
            pipe_per_fragment: 0.01e-6,
            pipe_per_state_change: 0.5e-6,
            pipe_per_blend_texel: 2.0e-8,
            ..CostModel::onyx2()
        }
    }

    /// Simulated CPU seconds for a body of spot-shape work.
    pub fn cpu_seconds(&self, work: &CpuWork) -> f64 {
        work.streamline_steps as f64 * self.cpu_per_streamline_step
            + work.mesh_vertices as f64 * self.cpu_per_mesh_vertex
            + work.spots as f64 * self.cpu_per_spot
    }

    /// Simulated pipe seconds for a body of rasterization work.
    pub fn pipe_seconds(&self, work: &PipeWork) -> f64 {
        work.vertices as f64 * self.pipe_per_vertex
            + work.fragments as f64 * self.pipe_per_fragment
            + work.state_changes as f64 * self.pipe_per_state_change
            + work.blend_texels as f64 * self.pipe_per_blend_texel
    }

    /// Simulated seconds needed to move `bytes` over the host-to-graphics bus.
    pub fn bus_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / self.bus_bytes_per_second
    }

    /// Bytes of vertex traffic for a given vertex count.
    pub fn vertex_bytes(&self, vertices: u64) -> u64 {
        (vertices as f64 * self.bytes_per_vertex) as u64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::onyx2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Work counts of the paper's atmospheric-pollution workload: 2500 bent
    /// spots, each a 32x17 mesh built from a 32-step stream line.
    fn atmospheric_cpu() -> CpuWork {
        CpuWork {
            streamline_steps: 2500 * 32,
            mesh_vertices: 2500 * 32 * 17,
            spots: 2500,
        }
    }

    fn atmospheric_pipe() -> PipeWork {
        PipeWork {
            vertices: 2500 * 32 * 17,
            fragments: 2500 * 600,
            state_changes: 0,
            blend_texels: 0,
        }
    }

    /// Work counts of the turbulence workload: 40 000 bent spots, 16x3 mesh.
    fn turbulence_cpu() -> CpuWork {
        CpuWork {
            streamline_steps: 40_000 * 16,
            mesh_vertices: 40_000 * 16 * 3,
            spots: 40_000,
        }
    }

    #[test]
    fn atmospheric_cpu_time_close_to_one_second_on_one_processor() {
        // Table 1: 1 processor, 1 pipe => 1.0 textures/second, CPU bound.
        let m = CostModel::onyx2();
        let t = m.cpu_seconds(&atmospheric_cpu());
        assert!(t > 0.7 && t < 1.2, "cpu seconds {t}");
    }

    #[test]
    fn atmospheric_pipe_is_saturated_by_about_four_processors() {
        // The paper observes that ~4 processors saturate one pipe: the pipe
        // time should be roughly a quarter of the single-CPU time.
        let m = CostModel::onyx2();
        let cpu = m.cpu_seconds(&atmospheric_cpu());
        let pipe = m.pipe_seconds(&atmospheric_pipe());
        let ratio = cpu / pipe;
        assert!(ratio > 2.5 && ratio < 6.0, "cpu/pipe ratio {ratio}");
    }

    #[test]
    fn turbulence_cpu_time_larger_than_atmospheric() {
        // Table 2 throughputs are lower than Table 1 (more spots dominate the
        // higher per-spot mesh resolution of Table 1).
        let m = CostModel::onyx2();
        let t1 = m.cpu_seconds(&atmospheric_cpu());
        let t2 = m.cpu_seconds(&turbulence_cpu());
        assert!(t2 > t1, "t1={t1} t2={t2}");
    }

    #[test]
    fn vertex_bandwidth_matches_paper_estimates() {
        let m = CostModel::onyx2();
        // Atmospheric: ~1.36 M vertices/texture -> ~21.8 MB/texture, which at
        // 5.6 textures/s gives ~116 MB/s (paper, section 5.1).
        let verts_per_texture = 2500u64 * 32 * 17;
        let bytes = m.vertex_bytes(verts_per_texture);
        let mb = bytes as f64 / 1.0e6;
        assert!((mb - 21.8).abs() < 1.0, "atmospheric MB/texture = {mb}");
        assert!((mb * 5.6 - 116.0).abs() < 10.0);
        // Turbulence: ~1.92 M vertices -> ~31 MB/texture (paper, section 5.2).
        let dns_bytes = m.vertex_bytes(40_000 * 16 * 3);
        let dns_mb = dns_bytes as f64 / 1.0e6;
        assert!(
            (dns_mb - 31.0).abs() < 1.5,
            "turbulence MB/texture = {dns_mb}"
        );
    }

    #[test]
    fn bus_transfer_well_below_saturation() {
        // 21.8 MB at 800 MB/s is ~27 ms, far below the ~180 ms texture time.
        let m = CostModel::onyx2();
        let t = m.bus_seconds(m.vertex_bytes(2500 * 32 * 17));
        assert!(t < 0.05, "bus seconds {t}");
    }

    #[test]
    fn state_changes_and_blend_texels_are_charged() {
        let m = CostModel::onyx2();
        let base = m.pipe_seconds(&PipeWork::default());
        assert_eq!(base, 0.0);
        let with_state = m.pipe_seconds(&PipeWork {
            state_changes: 1000,
            ..Default::default()
        });
        assert!(with_state > 0.0);
        let blend = m.pipe_seconds(&PipeWork {
            blend_texels: 512 * 512,
            ..Default::default()
        });
        // Blending one 512x512 partial texture costs on the order of 20 ms,
        // the `c` term of equation 3.2.
        assert!(blend > 0.01 && blend < 0.05, "blend {blend}");
    }

    #[test]
    fn fast_pipe_is_cheaper_per_primitive() {
        let onyx = CostModel::onyx2();
        let fast = CostModel::fast_pipe();
        let w = PipeWork {
            vertices: 1_000_000,
            fragments: 1_000_000,
            state_changes: 100,
            blend_texels: 0,
        };
        assert!(fast.pipe_seconds(&w) < onyx.pipe_seconds(&w));
        // CPU side is unchanged.
        let c = CpuWork {
            streamline_steps: 100,
            mesh_vertices: 100,
            spots: 10,
        };
        assert_eq!(fast.cpu_seconds(&c), onyx.cpu_seconds(&c));
    }

    #[test]
    fn work_merge_accumulates() {
        let mut a = CpuWork {
            streamline_steps: 1,
            mesh_vertices: 2,
            spots: 3,
        };
        a.merge(&CpuWork {
            streamline_steps: 10,
            mesh_vertices: 20,
            spots: 30,
        });
        assert_eq!(a.streamline_steps, 11);
        assert_eq!(a.mesh_vertices, 22);
        assert_eq!(a.spots, 33);

        let mut p = PipeWork::default();
        p.merge(&PipeWork {
            vertices: 5,
            fragments: 6,
            state_changes: 7,
            blend_texels: 8,
        });
        assert_eq!(p.vertices, 5);
        assert_eq!(p.blend_texels, 8);
    }
}
