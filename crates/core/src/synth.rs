//! Sequential spot-noise texture synthesis.
//!
//! This is the reference implementation of the paper's pipeline steps 2–3 on
//! a single processor and a single graphics pipe (the baseline of equation
//! 2.1 and the `(1, 1)` cell of Tables 1 and 2). The divide-and-conquer
//! executor in [`crate::dnc`] must produce the same texture up to
//! floating-point reassociation; the equivalence tests rely on this module as
//! the ground truth.

use crate::bent::build_bent_spot;
use crate::config::{SamplingMode, SpotKind, SynthesisConfig};
use crate::spot::{build_standard_spot, FieldToPixel, Spot, SpotGeometry, SpotJob};
use flowfield::stats::{field_stats, SpeedNormalizer};
use flowfield::VectorField;
use softpipe::cost::CpuWork;
use softpipe::pipe::{PipeCore, PipeOutput, RenderCommand};
use softpipe::{disc_spot_texture, BlendMode, FootprintPyramid, Texture};
use std::sync::Arc;

/// Everything that is shared by all spot-shape computations of one frame:
/// the coordinate mapping, the speed normaliser and the spot-function
/// texture. Building it once per frame keeps the per-spot work identical
/// between the sequential and the parallel executors; frame producers
/// (the [`Pipeline`](crate::pipeline::Pipeline)) keep one context alive
/// across frames and [`refresh`](SynthesisContext::refresh) it instead, so
/// the expensive config-derived parts — the pre-rendered spot texture and
/// its footprint pyramid — are rebuilt only when the parameters they
/// depend on actually change.
#[derive(Debug, Clone)]
pub struct SynthesisContext {
    /// Field-to-pixel coordinate mapping.
    pub mapper: FieldToPixel,
    /// Speed normaliser derived from the field statistics.
    pub normalizer: SpeedNormalizer,
    /// The pre-rendered spot-function texture `h(x)`.
    pub spot_texture: Arc<Texture>,
    /// The fragment sampling mode every pipe of the frame is configured
    /// with (from [`SynthesisConfig::sampling`]).
    pub sampling: SamplingMode,
    /// The spot texture's footprint pyramid, built once per context and
    /// shipped to every group's pipe by the preamble — present exactly when
    /// `sampling` is [`SamplingMode::Footprint`].
    pub spot_pyramid: Option<Arc<FootprintPyramid>>,
    /// The spot-shape parameters `spot_texture` was rendered with —
    /// `(spot_texture_size, spot_softness)` — so `refresh` can tell a
    /// cosmetic frame boundary from a real invalidation.
    spot_shape: (usize, f32),
    /// Times the spot texture (and pyramid, when present) were rendered
    /// over this context's lifetime. Telemetry for the reuse tests.
    spot_texture_builds: u64,
}

impl SynthesisContext {
    /// Builds the per-frame context for a field and a configuration.
    pub fn new(field: &dyn VectorField, cfg: &SynthesisConfig) -> Self {
        let stats = field_stats(field, 32, 32);
        let spot_texture = Arc::new(disc_spot_texture(cfg.spot_texture_size, cfg.spot_softness));
        let spot_pyramid = (cfg.sampling == SamplingMode::Footprint)
            .then(|| Arc::new(FootprintPyramid::build(Arc::clone(&spot_texture))));
        SynthesisContext {
            mapper: FieldToPixel::new(field.domain(), cfg.texture_size),
            normalizer: SpeedNormalizer::from_stats(&stats),
            spot_texture,
            sampling: cfg.sampling,
            spot_pyramid,
            spot_shape: (cfg.spot_texture_size, cfg.spot_softness),
            spot_texture_builds: 1,
        }
    }

    /// Brings the context up to date for the next frame, rebuilding only
    /// what the new `(field, cfg)` pair invalidates. The field-dependent
    /// parts (coordinate mapper, speed normaliser) are recomputed every
    /// call — fields advance between frames, and the 32×32 stats sweep that
    /// feeds the normaliser is how the context *observes* that — but the
    /// pre-rendered spot texture and its footprint pyramid are kept while
    /// the spot-shape parameters and sampling mode are unchanged. The
    /// refreshed context is indistinguishable from a freshly built one
    /// (same values, shared or rebuilt), so frames are bit-identical either
    /// way.
    pub fn refresh(&mut self, field: &dyn VectorField, cfg: &SynthesisConfig) {
        let stats = field_stats(field, 32, 32);
        self.mapper = FieldToPixel::new(field.domain(), cfg.texture_size);
        self.normalizer = SpeedNormalizer::from_stats(&stats);
        let shape = (cfg.spot_texture_size, cfg.spot_softness);
        if shape != self.spot_shape {
            self.spot_texture =
                Arc::new(disc_spot_texture(cfg.spot_texture_size, cfg.spot_softness));
            self.spot_pyramid = None;
            self.spot_shape = shape;
            self.spot_texture_builds += 1;
        }
        self.sampling = cfg.sampling;
        match cfg.sampling {
            SamplingMode::Footprint if self.spot_pyramid.is_none() => {
                self.spot_pyramid = Some(Arc::new(FootprintPyramid::build(Arc::clone(
                    &self.spot_texture,
                ))));
            }
            SamplingMode::Footprint => {}
            SamplingMode::Exact => self.spot_pyramid = None,
        }
    }

    /// Times the spot texture was rendered over this context's lifetime
    /// (1 for a fresh context; unchanged by refreshes that reuse it).
    pub fn spot_texture_builds(&self) -> u64 {
        self.spot_texture_builds
    }

    /// Builds the geometry job for one spot (dispatching on the spot kind).
    pub fn build_job(
        &self,
        field: &dyn VectorField,
        spot: &Spot,
        cfg: &SynthesisConfig,
    ) -> SpotJob {
        match cfg.spot_kind {
            SpotKind::Disc => build_standard_spot(field, spot, cfg, &self.mapper, &self.normalizer),
            SpotKind::Bent { .. } => {
                build_bent_spot(field, spot, cfg, &self.mapper, &self.normalizer)
            }
        }
    }
}

/// The frame-preamble commands every executor issues before drawing spots:
/// upload and bind the spot-function texture `h(x)` and select additive
/// blending (the spot-noise sum). Shared by the sequential baseline and the
/// scheduler engine so all paths configure their pipes identically.
///
/// A non-default sampling mode appends one `SetSampling`; the default
/// ([`SamplingMode::Exact`]) emits nothing, so exact-mode command streams —
/// and their state-change accounting — are byte-identical to what they have
/// always been.
pub fn preamble_commands(ctx: &SynthesisContext) -> Vec<RenderCommand> {
    let mut commands = vec![
        RenderCommand::UploadTexture(0, ctx.spot_texture.clone()),
        RenderCommand::BindTexture(0),
        RenderCommand::SetBlend(BlendMode::Additive),
    ];
    if let Some(pyramid) = &ctx.spot_pyramid {
        // Ship the context's shared pyramid so every pipe of the frame uses
        // the one build instead of each rebuilding it lazily.
        commands.push(RenderCommand::UploadPyramid(0, Arc::clone(pyramid)));
    }
    if ctx.sampling != SamplingMode::Exact {
        commands.push(RenderCommand::SetSampling(ctx.sampling));
    }
    commands
}

/// Converts a spot geometry into the render command submitted to a pipe.
pub fn geometry_command(geometry: SpotGeometry, intensity: f32) -> RenderCommand {
    match geometry {
        SpotGeometry::Quad(vertices) => RenderCommand::Quad {
            vertices,
            intensity,
        },
        SpotGeometry::Mesh(mesh) => RenderCommand::Mesh { mesh, intensity },
    }
}

/// Converts a finished [`SpotJob`] into the render-command sequence for a
/// pipe. Software-transformed spots are a single draw command; pipe-
/// transformed spots additionally load the per-spot matrix first (costing a
/// pipe synchronisation, which is exactly the trade-off being measured).
pub fn job_commands(job: SpotJob) -> impl Iterator<Item = RenderCommand> {
    let transform_cmd = job.pipe_transform.map(RenderCommand::LoadTransform);
    let draw = geometry_command(job.geometry, job.intensity);
    transform_cmd.into_iter().chain(std::iter::once(draw))
}

/// Result of a sequential synthesis run.
#[derive(Debug, Clone)]
pub struct SequentialOutput {
    /// The synthesised spot-noise texture.
    pub texture: Texture,
    /// CPU work performed for spot-shape computation.
    pub cpu_work: CpuWork,
    /// The pipe's output counters.
    pub pipe: PipeOutput,
}

/// Synthesises a spot-noise texture for `spots` over `field` on a single
/// processor and a single (synchronous) pipe.
pub fn synthesize_sequential(
    field: &dyn VectorField,
    spots: &[Spot],
    cfg: &SynthesisConfig,
) -> SequentialOutput {
    cfg.validate().expect("invalid synthesis configuration");
    let ctx = SynthesisContext::new(field, cfg);
    synthesize_sequential_with_context(field, spots, cfg, &ctx)
}

/// Like [`synthesize_sequential`], but reusing a prepared context (the
/// divide-and-conquer equivalence tests need both paths to share one
/// context so the per-spot geometry is bit-identical).
pub fn synthesize_sequential_with_context(
    field: &dyn VectorField,
    spots: &[Spot],
    cfg: &SynthesisConfig,
    ctx: &SynthesisContext,
) -> SequentialOutput {
    let mut core = PipeCore::new(cfg.texture_size, cfg.texture_size);
    core.execute(RenderCommand::Clear);
    for cmd in preamble_commands(ctx) {
        core.execute(cmd);
    }

    let mut cpu_work = CpuWork::default();
    for spot in spots {
        let job = ctx.build_job(field, spot, cfg);
        cpu_work.merge(&job.cpu_work);
        for cmd in job_commands(job) {
            core.execute(cmd);
        }
    }
    let pipe = core.finish();
    SequentialOutput {
        texture: pipe.texture.clone(),
        cpu_work,
        pipe,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spot::generate_spots;
    use flowfield::analytic::{Uniform, Vortex};
    use flowfield::{Rect, Vec2};

    fn domain() -> Rect {
        Rect::new(Vec2::ZERO, Vec2::new(1.0, 1.0))
    }

    fn vortex() -> Vortex {
        Vortex {
            omega: 1.0,
            center: Vec2::new(0.5, 0.5),
            domain: domain(),
        }
    }

    #[test]
    fn sequential_synthesis_produces_nonzero_texture() {
        let cfg = SynthesisConfig::small_test();
        let field = vortex();
        let spots = generate_spots(cfg.spot_count, domain(), cfg.intensity_amplitude, cfg.seed);
        let out = synthesize_sequential(&field, &spots, &cfg);
        assert_eq!(out.texture.width(), cfg.texture_size);
        assert!(out.texture.variance() > 0.0, "texture has no contrast");
        assert_eq!(out.cpu_work.spots, cfg.spot_count as u64);
        assert!(out.pipe.raster.fragments > 0);
    }

    #[test]
    fn spot_count_scales_texture_energy() {
        let field = Uniform {
            velocity: Vec2::new(1.0, 0.0),
            domain: domain(),
        };
        let mut cfg = SynthesisConfig::small_test();
        cfg.spot_count = 100;
        let spots_small = generate_spots(100, domain(), 1.0, 3);
        let small = synthesize_sequential(&field, &spots_small, &cfg);
        cfg.spot_count = 400;
        let spots_large = generate_spots(400, domain(), 1.0, 3);
        let large = synthesize_sequential(&field, &spots_large, &cfg);
        // More spots -> more accumulated |intensity| (variance grows roughly
        // linearly with the spot count for zero-mean spots).
        assert!(large.texture.variance() > small.texture.variance());
    }

    #[test]
    fn texture_mean_is_near_zero_for_zero_mean_spots() {
        let cfg = SynthesisConfig {
            spot_count: 2000,
            ..SynthesisConfig::small_test()
        };
        let field = vortex();
        let spots = generate_spots(cfg.spot_count, domain(), 1.0, 11);
        let out = synthesize_sequential(&field, &spots, &cfg);
        let (lo, hi) = out.texture.range();
        assert!(lo < 0.0 && hi > 0.0, "range ({lo}, {hi}) not centred");
        // The mean intensity is small compared to the peak amplitude.
        assert!(out.texture.mean().abs() < 0.25 * hi.max(-lo));
    }

    #[test]
    fn bent_configuration_runs_and_counts_streamline_work() {
        let cfg = SynthesisConfig {
            spot_kind: SpotKind::Bent { rows: 8, cols: 3 },
            spot_count: 100,
            ..SynthesisConfig::small_test()
        };
        let field = vortex();
        let spots = generate_spots(cfg.spot_count, domain(), 1.0, 5);
        let out = synthesize_sequential(&field, &spots, &cfg);
        assert!(out.cpu_work.streamline_steps > 0);
        assert_eq!(out.cpu_work.mesh_vertices, 100 * 24);
        assert!(out.texture.variance() > 0.0);
    }

    #[test]
    fn same_seed_same_texture() {
        let cfg = SynthesisConfig::small_test();
        let field = vortex();
        let spots = generate_spots(cfg.spot_count, domain(), 1.0, cfg.seed);
        let a = synthesize_sequential(&field, &spots, &cfg);
        let b = synthesize_sequential(&field, &spots, &cfg);
        assert_eq!(a.texture.absolute_difference(&b.texture), 0.0);
    }

    #[test]
    fn vertices_submitted_match_config_prediction() {
        let cfg = SynthesisConfig {
            spot_count: 50,
            ..SynthesisConfig::small_test()
        };
        let field = vortex();
        let spots = generate_spots(cfg.spot_count, domain(), 1.0, 2);
        let out = synthesize_sequential(&field, &spots, &cfg);
        assert_eq!(
            out.pipe.raster.vertices as usize,
            cfg.vertices_per_texture()
        );
    }

    #[test]
    fn refresh_reuses_the_spot_texture_until_its_parameters_change() {
        let cfg = SynthesisConfig::small_test();
        let field = vortex();
        let mut ctx = SynthesisContext::new(&field, &cfg);
        assert_eq!(ctx.spot_texture_builds(), 1);
        let original = Arc::clone(&ctx.spot_texture);

        // Frame-to-frame refresh with unchanged shape parameters: the spot
        // texture is the very same allocation, and the refreshed context
        // matches a freshly built one value for value.
        ctx.refresh(&field, &cfg);
        assert!(Arc::ptr_eq(&ctx.spot_texture, &original));
        assert_eq!(ctx.spot_texture_builds(), 1);
        let fresh = SynthesisContext::new(&field, &cfg);
        assert_eq!(
            fresh.spot_texture.absolute_difference(&ctx.spot_texture),
            0.0
        );

        // A changed spot shape invalidates the texture...
        let resized = SynthesisConfig {
            spot_texture_size: cfg.spot_texture_size * 2,
            ..cfg
        };
        ctx.refresh(&field, &resized);
        assert!(!Arc::ptr_eq(&ctx.spot_texture, &original));
        assert_eq!(ctx.spot_texture_builds(), 2);
        assert_eq!(ctx.spot_texture.width(), resized.spot_texture_size);

        // ...and flipping the sampling mode builds (then drops) the
        // pyramid without touching the texture.
        let footprint = SynthesisConfig {
            sampling: SamplingMode::Footprint,
            ..resized
        };
        ctx.refresh(&field, &footprint);
        assert!(ctx.spot_pyramid.is_some());
        assert_eq!(ctx.spot_texture_builds(), 2);
        ctx.refresh(&field, &resized);
        assert!(ctx.spot_pyramid.is_none());
    }

    #[test]
    fn refresh_tracks_the_field_between_frames() {
        // The mapper and normaliser must follow the field: refreshing onto
        // a field with different statistics yields the same context a fresh
        // build would.
        let cfg = SynthesisConfig::small_test();
        let slow = Uniform {
            velocity: Vec2::new(0.1, 0.0),
            domain: domain(),
        };
        let fast = Uniform {
            velocity: Vec2::new(5.0, 0.0),
            domain: domain(),
        };
        let mut ctx = SynthesisContext::new(&slow, &cfg);
        ctx.refresh(&fast, &cfg);
        let fresh = SynthesisContext::new(&fast, &cfg);
        assert_eq!(
            ctx.normalizer.normalize(2.5),
            fresh.normalizer.normalize(2.5),
            "refreshed normaliser diverged from a fresh build"
        );
    }

    #[test]
    #[should_panic(expected = "invalid synthesis configuration")]
    fn invalid_config_rejected() {
        let cfg = SynthesisConfig {
            spot_count: 0,
            ..SynthesisConfig::small_test()
        };
        let field = vortex();
        let _ = synthesize_sequential(&field, &[], &cfg);
    }
}
