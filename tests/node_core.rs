//! Tests driving the transport-free [`NodeCore`] directly — no sockets, no
//! HTTP — and holding it to the same contract as the served path: the
//! session lifecycle behaves identically, and the bytes are bit-identical
//! to both direct `synthesize_dnc` calls and a real loopback server.
//!
//! This is the seam the state/transport split exists for: everything the
//! HTTP shell and the router do is re-expressible as `NodeCore` calls.

use flowfield::analytic::Vortex;
use flowfield::{Rect, Vec2};
use softpipe::machine::MachineConfig;
use spotnoise::advect::{PositionMode, SpotAnimator};
use spotnoise::config::SynthesisConfig;
use spotnoise::dnc::synthesize_dnc;
use spotnoise::json::Json;
use spotnoise_service::{
    serve, FieldSpec, NodeCore, ServiceClient, ServiceError, ServiceOptions, SessionSpec,
};

fn domain() -> Rect {
    Rect::new(Vec2::ZERO, Vec2::new(1.0, 1.0))
}

fn test_config(seed: u64) -> SynthesisConfig {
    SynthesisConfig {
        texture_size: 64,
        spot_count: 120,
        spot_texture_size: 16,
        seed,
        ..SynthesisConfig::small_test()
    }
}

// Masters-only machine — deterministic divide-and-conquer output, same
// idiom as the loopback suite.
fn session_body(seed: u64, omega: f64) -> String {
    format!(
        concat!(
            "{{\"field\": {{\"kind\": \"vortex\", \"omega\": {}, \"cx\": 0.5, \"cy\": 0.5}}, ",
            "\"config\": {{\"texture_size\": 64, \"spot_count\": 120, ",
            "\"spot_texture_size\": 16, \"seed\": {}}}, ",
            "\"machine\": {{\"processors\": 2, \"pipes\": 2}}, \"dt\": 0.05}}"
        ),
        omega, seed
    )
}

fn direct_frame_bytes(seed: u64, omega: f64, index: u64) -> Vec<u8> {
    let cfg = test_config(seed);
    let field = Vortex {
        omega,
        center: Vec2::new(0.5, 0.5),
        domain: domain(),
    };
    let mut animator =
        SpotAnimator::new(domain(), cfg.spot_count, PositionMode::Advected, cfg.seed);
    for _ in 0..=index {
        animator.advance(&field, 0.05);
    }
    let spots = animator.spots();
    let out = synthesize_dnc(&field, &spots, &cfg, &MachineConfig::new(2, 2));
    let mut bytes = Vec::with_capacity(out.texture.data().len() * 4);
    for v in out.texture.data() {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    bytes
}

fn spec(seed: u64, omega: f64) -> SessionSpec {
    SessionSpec::from_body(session_body(seed, omega).as_bytes()).expect("parse session spec")
}

#[test]
fn node_core_serves_the_same_bytes_as_the_http_path() {
    let (seed, omega) = (31u64, 1.0f64);

    // The transport-free path: NodeCore driven as a library.
    let core = NodeCore::new(ServiceOptions::default());
    let workers = core.start_workers(2);
    let id = core.create_session(spec(seed, omega)).expect("create");
    let mut core_frames = Vec::new();
    for frame in 0..3u64 {
        let result = core.fetch_frame(id, frame).expect("core fetch");
        assert_eq!(result.frame, frame);
        assert!(!result.cached, "first fetch must synthesize");
        core_frames.push(result.bytes.to_vec());
    }

    // The served path: the same spec over loopback HTTP.
    let handle = serve("127.0.0.1:0", ServiceOptions::default()).expect("bind loopback");
    let mut client = ServiceClient::connect(handle.addr()).expect("connect");
    let session = client
        .create_session(&session_body(seed, omega))
        .expect("create over http");
    for (frame, core_bytes) in core_frames.iter().enumerate() {
        let fetched = client
            .fetch_frame(&session, frame as u64)
            .expect("http fetch");
        assert_eq!(
            &fetched.bytes, core_bytes,
            "frame {frame}: HTTP shell and NodeCore disagree — the transport \
             layer is perturbing frames"
        );
        assert_eq!(*core_bytes, direct_frame_bytes(seed, omega, frame as u64));
    }
    handle.shutdown();

    // Cache hit on re-fetch, still identical.
    let again = core.fetch_frame(id, 1).expect("core refetch");
    assert!(again.cached);
    assert_eq!(*again.bytes, core_frames[1]);

    core.begin_shutdown();
    for w in workers {
        w.join().expect("worker thread");
    }
}

#[test]
fn node_core_lifecycle_steer_close_and_errors() {
    let core = NodeCore::new(ServiceOptions::default());
    let workers = core.start_workers(2);
    let id = core.create_session(spec(7, 1.0)).expect("create");
    let before = core.fetch_frame(id, 0).expect("fetch before steer");

    // Steering swaps the field; the next frame must differ from the
    // unsteered trajectory.
    let steered = FieldSpec::from_json(
        &Json::parse(r#"{"kind": "vortex", "omega": -3.0, "cx": 0.5, "cy": 0.5}"#)
            .expect("parse field json"),
    )
    .expect("field spec");
    core.steer(id, steered).expect("steer");
    let after = core.fetch_frame(id, 1).expect("fetch after steer");
    assert_eq!(after.bytes.len(), before.bytes.len());
    assert_ne!(
        *after.bytes,
        direct_frame_bytes(7, 1.0, 1),
        "steering must actually change the synthesized trajectory"
    );

    // Unknown session and unknown steer target.
    assert!(matches!(
        core.fetch_frame(id + 999, 0),
        Err(ServiceError::NotFound)
    ));
    assert!(matches!(
        core.steer(id + 999, FieldSpec::default_vortex()),
        Err(ServiceError::NotFound)
    ));

    // Close; the id is gone, closing twice reports NotFound.
    core.close_session(id).expect("close");
    assert!(matches!(
        core.fetch_frame(id, 0),
        Err(ServiceError::NotFound)
    ));
    assert!(matches!(
        core.close_session(id),
        Err(ServiceError::NotFound)
    ));

    core.begin_shutdown();
    for w in workers {
        w.join().expect("worker thread");
    }
}

#[test]
fn a_quarantined_session_refuses_frames_until_closed() {
    let core = NodeCore::new(ServiceOptions::default());
    let workers = core.start_workers(1);
    let id = core.create_session(spec(13, 1.0)).expect("create");
    core.fetch_frame(id, 0).expect("healthy fetch");

    // Quarantine through the same escape hatch the panic barrier uses.
    let session = core.session_handle(id).expect("session handle");
    assert!(session.lock().expect("lock session").quarantine());
    assert!(matches!(
        core.fetch_frame(id, 1),
        Err(ServiceError::Quarantined)
    ));
    // Close still works — that is the documented recovery path.
    core.close_session(id).expect("close quarantined");
    assert!(matches!(
        core.fetch_frame(id, 1),
        Err(ServiceError::NotFound)
    ));

    // A fresh session on the same core is unaffected.
    let fresh = core.create_session(spec(13, 1.0)).expect("create fresh");
    let result = core.fetch_frame(fresh, 0).expect("fetch on fresh session");
    assert_eq!(*result.bytes, direct_frame_bytes(13, 1.0, 0));

    core.begin_shutdown();
    for w in workers {
        w.join().expect("worker thread");
    }
}

#[test]
fn shutdown_refuses_new_work_and_shutting_down_is_observable() {
    let core = NodeCore::new(ServiceOptions::default());
    let workers = core.start_workers(1);
    assert!(!core.is_shutting_down());
    assert!(core.begin_shutdown(), "first shutdown call wins");
    assert!(!core.begin_shutdown(), "second call is a no-op");
    assert!(core.is_shutting_down());
    assert!(matches!(
        core.create_session(spec(3, 1.0)),
        Err(ServiceError::ShuttingDown)
    ));
    for w in workers {
        w.join().expect("worker thread");
    }
}
