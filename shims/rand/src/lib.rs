//! Offline stand-in for the `rand` crate (0.8-era API subset).
//!
//! Provides `RngCore`, `Rng::gen_range` over half-open and inclusive numeric
//! ranges, and `SeedableRng::seed_from_u64`. Mirroring the real crate's
//! trait shape matters for type inference: `SampleRange<T>` is implemented
//! generically for `Range<T>`/`RangeInclusive<T>` with `T: SampleUniform`,
//! so a literal like `-1.0..=1.0` ties `T` to the literal's (defaulted)
//! type. The sampling maps 53 (f64) or 24 (f32) high bits of the generator
//! output onto the unit interval and reduces integers modulo the span; the
//! streams differ from the real crate, which is fine because every consumer
//! in this workspace regenerates its data from seeds rather than comparing
//! against externally recorded values.

use core::ops::{Range, RangeInclusive};

/// Core generator interface: a source of 64 random bits.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (high half of `next_u64` by default).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a bounded range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform sample from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`). Emptiness has already been checked.
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

/// Range types that can produce a uniform sample from a generator.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_uniform(lo, hi, true, rng)
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(lo: f64, hi: f64, _inclusive: bool, rng: &mut R) -> f64 {
        // 53 random bits -> [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / 9007199254740992.0);
        lo + (hi - lo) * unit
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(lo: f32, hi: f32, _inclusive: bool, rng: &mut R) -> f32 {
        // 24 random bits -> [0, 1).
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / 16777216.0);
        lo + (hi - lo) * unit
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let x = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&x));
            let y = rng.gen_range(0.5f32..=1.5);
            assert!((0.5..=1.5).contains(&y));
        }
    }

    #[test]
    fn float_literal_defaults_to_f64() {
        // The inference pattern the workspace relies on:
        // `f64_value * rng.gen_range(-1.0..=1.0)` must type-check.
        let mut rng = Counter(3);
        let jitter: f64 = 0.25 * rng.gen_range(-1.0..=1.0);
        assert!(jitter.abs() <= 0.25);
    }

    #[test]
    fn int_ranges_stay_in_bounds_and_hit_ends() {
        let mut rng = Counter(7);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = rng.gen_range(0usize..=3);
            assert!(v <= 3);
            seen_lo |= v == 0;
            seen_hi |= v == 3;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Counter(1);
        let _ = rng.gen_range(5u32..5);
    }
}
