//! Integration tests of the synthesis service over real loopback HTTP.
//!
//! The headline property: a frame fetched from the server is **bit
//! identical** to calling the advect + `synthesize_dnc` path directly with
//! the same parameters — the service adds sessions, caching and admission
//! control around the engine without perturbing a single texel.

use flowfield::analytic::Vortex;
use flowfield::{Rect, Vec2};
use softpipe::machine::MachineConfig;
use spotnoise::advect::{PositionMode, SpotAnimator};
use spotnoise::config::SynthesisConfig;
use spotnoise::dnc::synthesize_dnc;
use spotnoise::json::Json;
use spotnoise_service::{serve, AdmissionConfig, ClientError, ServiceClient, ServiceOptions};
use std::time::Duration;

fn domain() -> Rect {
    Rect::new(Vec2::ZERO, Vec2::new(1.0, 1.0))
}

/// The test sessions' synthesis configuration, mirrored on both sides.
fn test_config(seed: u64) -> SynthesisConfig {
    SynthesisConfig {
        texture_size: 64,
        spot_count: 120,
        spot_texture_size: 16,
        seed,
        ..SynthesisConfig::small_test()
    }
}

// Two process groups, masters only: with no slaves there is no intra-group
// submission reordering, so the divide-and-conquer result is bit-identical
// run to run (the same property the tiled static-vs-dynamic equivalence
// test relies on) — which is what lets this suite demand exact bytes.
fn session_body(seed: u64, omega: f64) -> String {
    format!(
        concat!(
            "{{\"field\": {{\"kind\": \"vortex\", \"omega\": {}, \"cx\": 0.5, \"cy\": 0.5}}, ",
            "\"config\": {{\"texture_size\": 64, \"spot_count\": 120, ",
            "\"spot_texture_size\": 16, \"seed\": {}}}, ",
            "\"machine\": {{\"processors\": 2, \"pipes\": 2}}, \"dt\": 0.05}}"
        ),
        omega, seed
    )
}

/// Computes frame `index` exactly the way the paper's pipeline does, with
/// direct engine calls: advect `index + 1` steps from the seed, then one
/// divide-and-conquer synthesis, serialized as little-endian f32.
fn direct_frame_bytes(seed: u64, omega: f64, index: u64) -> Vec<u8> {
    let cfg = test_config(seed);
    let field = Vortex {
        omega,
        center: Vec2::new(0.5, 0.5),
        domain: domain(),
    };
    let mut animator =
        SpotAnimator::new(domain(), cfg.spot_count, PositionMode::Advected, cfg.seed);
    for _ in 0..=index {
        animator.advance(&field, 0.05);
    }
    let spots = animator.spots();
    let out = synthesize_dnc(&field, &spots, &cfg, &MachineConfig::new(2, 2));
    let mut bytes = Vec::with_capacity(out.texture.data().len() * 4);
    for v in out.texture.data() {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    bytes
}

#[test]
fn two_concurrent_sessions_match_direct_synthesis_bit_for_bit() {
    let handle = serve("127.0.0.1:0", ServiceOptions::default()).expect("bind loopback");
    let addr = handle.addr();
    // Two sessions with different seeds and steering, driven concurrently.
    let clients = [(11u64, 1.0f64), (23u64, -2.0f64)];
    let workers: Vec<_> = clients
        .into_iter()
        .map(|(seed, omega)| {
            std::thread::spawn(move || {
                let mut client = ServiceClient::connect(addr).expect("connect");
                let session = client
                    .create_session(&session_body(seed, omega))
                    .expect("create session");
                for frame in 0..3u64 {
                    let fetched = client.fetch_frame(&session, frame).expect("fetch frame");
                    assert_eq!(fetched.frame, frame);
                    assert!(!fetched.cache_hit, "first fetch must synthesize");
                    let expected = direct_frame_bytes(seed, omega, frame);
                    assert_eq!(
                        fetched.bytes, expected,
                        "seed {seed} frame {frame}: served texture diverged from direct \
                         synthesize_dnc"
                    );
                }
                // Re-fetching an old frame is a cache hit with identical bytes.
                let again = client.fetch_frame(&session, 1).expect("refetch");
                assert!(again.cache_hit);
                assert_eq!(again.bytes, direct_frame_bytes(seed, omega, 1));
                client.close_session(&session).expect("close");
            })
        })
        .collect();
    for w in workers {
        w.join().expect("session thread panicked");
    }
    handle.shutdown();
}

#[test]
fn overload_is_shed_with_busy_and_the_queue_stays_bounded() {
    let watermark = 2;
    let handle = serve(
        "127.0.0.1:0",
        ServiceOptions {
            workers: 1,
            cache_bytes: 0, // every request must synthesize
            admission: AdmissionConfig {
                watermark,
                per_session: 8,
            },
            ..ServiceOptions::default()
        },
    )
    .expect("bind loopback");
    let addr = handle.addr();
    // Ten one-shot cold requests, each on its own session, fired together.
    let sessions: Vec<String> = (0..10)
        .map(|i| {
            let mut c = ServiceClient::connect(addr).expect("connect setup");
            c.create_session(&format!(
                "{{\"config\": {{\"texture_size\": 64, \"spot_count\": 600, \"seed\": {}}}}}",
                500 + i
            ))
            .expect("create session")
        })
        .collect();
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(sessions.len()));
    let workers: Vec<_> = sessions
        .into_iter()
        .map(|session| {
            let barrier = std::sync::Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = ServiceClient::connect(addr).expect("connect");
                barrier.wait();
                match client.fetch_frame(&session, 0) {
                    Ok(fetched) => {
                        assert_eq!(fetched.bytes.len(), 64 * 64 * 4);
                        Ok(())
                    }
                    Err(ClientError::Busy { .. }) => Err(()),
                    Err(e) => panic!("unexpected failure: {e}"),
                }
            })
        })
        .collect();
    let outcomes: Vec<Result<(), ()>> = workers
        .into_iter()
        .map(|w| w.join().expect("client panicked"))
        .collect();
    let served = outcomes.iter().filter(|o| o.is_ok()).count();
    let shed = outcomes.len() - served;
    assert!(served > 0, "nothing was served under overload");
    assert!(
        shed > 0,
        "10 simultaneous requests against watermark {watermark} with one worker must shed"
    );

    // The server's own accounting agrees: requests were shed with Busy and
    // the queue never grew past the watermark.
    let mut stats_client = ServiceClient::connect(addr).expect("connect stats");
    let stats = stats_client.stats().expect("stats");
    let queue = stats.get("queue").expect("queue stats");
    let shed_busy = queue.get("shed_busy").and_then(Json::as_f64).unwrap();
    let peak_depth = queue.get("peak_depth").and_then(Json::as_f64).unwrap();
    assert!(shed_busy >= shed as f64);
    assert!(
        peak_depth <= watermark as f64,
        "queue grew to {peak_depth}, past watermark {watermark}"
    );
    handle.shutdown();
}

#[test]
fn steering_back_serves_cached_frames_without_synthesis() {
    let handle = serve("127.0.0.1:0", ServiceOptions::default()).expect("bind loopback");
    let mut client = ServiceClient::connect(handle.addr()).expect("connect");
    let session = client
        .create_session(&session_body(7, 1.0))
        .expect("create session");
    let original = client.fetch_frame(&session, 0).expect("frame 0");
    assert!(!original.cache_hit);

    // Steer to a different field: frame 0 changes and must be synthesized.
    client
        .steer(
            &session,
            r#"{"kind": "vortex", "omega": 3.0, "cx": 0.5, "cy": 0.5}"#,
        )
        .expect("steer away");
    let steered = client.fetch_frame(&session, 0).expect("steered frame 0");
    assert!(!steered.cache_hit);
    assert_ne!(steered.bytes, original.bytes);

    // Steer back: the frame is served from the cache, bit-identical.
    client
        .steer(
            &session,
            r#"{"kind": "vortex", "omega": 1.0, "cx": 0.5, "cy": 0.5}"#,
        )
        .expect("steer back");
    let back = client
        .fetch_frame(&session, 0)
        .expect("steered-back frame 0");
    assert!(back.cache_hit, "steered-back frame must hit the cache");
    assert_eq!(back.bytes, original.bytes);

    let stats = client.stats().expect("stats");
    let hits = stats
        .get("cache")
        .and_then(|c| c.get("hits"))
        .and_then(Json::as_f64)
        .unwrap();
    assert!(hits >= 1.0);
    handle.shutdown();
}

#[test]
fn session_lifecycle_crud_and_idle_eviction_over_http() {
    let handle = serve(
        "127.0.0.1:0",
        ServiceOptions {
            idle_timeout: Duration::from_millis(150),
            ..ServiceOptions::default()
        },
    )
    .expect("bind loopback");
    let mut client = ServiceClient::connect(handle.addr()).expect("connect");

    // Create twice; ids are distinct and readable back.
    let a = client.create_session("").expect("create a");
    let b = client.create_session("").expect("create b");
    assert_ne!(a, b);
    let info = client
        .request("GET", &format!("/sessions/{a}"), b"")
        .expect("session info");
    assert_eq!(info.status, 200);
    let doc = info.json().expect("info json");
    assert_eq!(doc.get("session").and_then(Json::as_str), Some(a.as_str()));
    assert_eq!(
        doc.get("frame_bytes").and_then(Json::as_f64),
        Some((128 * 128 * 4) as f64)
    );

    // Deleting one leaves the other; double delete is 404.
    client.close_session(&b).expect("delete b");
    assert!(matches!(
        client.close_session(&b),
        Err(ClientError::NotFound)
    ));
    assert!(matches!(
        client.fetch_frame(&b, 0),
        Err(ClientError::NotFound)
    ));

    // Idle eviction: after the timeout, a /stats call sweeps the registry.
    std::thread::sleep(Duration::from_millis(400));
    let stats = client.stats().expect("stats");
    let evicted = stats
        .get("sessions")
        .and_then(|s| s.get("evicted"))
        .and_then(Json::as_f64)
        .unwrap();
    assert!(evicted >= 1.0, "idle session was not evicted");
    assert!(matches!(
        client.fetch_frame(&a, 0),
        Err(ClientError::NotFound)
    ));
    handle.shutdown();
}

#[test]
fn unframed_post_body_gets_411_and_a_closed_connection() {
    use std::io::{Read, Write};

    let handle = serve("127.0.0.1:0", ServiceOptions::default()).expect("bind loopback");
    // Raw socket: a POST whose body was sent without Content-Length. The
    // server must answer 411 Length Required and close — if it instead
    // parsed on, the body bytes would desync the keep-alive stream and be
    // interpreted as the next request's head.
    let mut raw = std::net::TcpStream::connect(handle.addr()).expect("connect");
    raw.write_all(b"POST /sessions HTTP/1.1\r\nHost: x\r\n\r\n{\"field\": {\"kind\": \"shear\", \"rate\": 1.0}}")
        .expect("send");
    let mut reply = String::new();
    raw.read_to_string(&mut reply).expect("read until close");
    assert!(
        reply.starts_with("HTTP/1.1 411 Length Required"),
        "expected 411, got: {reply:?}"
    );
    assert!(reply.contains("Connection: close"));
    // read_to_string returning means the server closed the connection, so
    // the stray body can never be parsed as a follow-up request.

    // A bodyless POST without Content-Length (curl -X POST) still works.
    let mut raw = std::net::TcpStream::connect(handle.addr()).expect("connect");
    raw.write_all(b"POST /shutdown HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
        .expect("send");
    let mut reply = String::new();
    raw.read_to_string(&mut reply).expect("read reply");
    assert!(
        reply.starts_with("HTTP/1.1 200"),
        "bodyless POST broke: {reply:?}"
    );
    handle.join();
}

/// Same spec as [`session_body`], but subscribed to the shared broadcast
/// channel for its `(field, config, seed)` instead of owning a pipeline.
fn shared_session_body(seed: u64, omega: f64) -> String {
    let body = session_body(seed, omega);
    format!("{}, \"shared\": true}}", &body[..body.len() - 1])
}

#[test]
fn streamed_frames_round_trip_chunked_and_keep_the_connection_reusable() {
    let handle = serve("127.0.0.1:0", ServiceOptions::default()).expect("bind loopback");
    let mut client = ServiceClient::connect(handle.addr()).expect("connect");
    let session = client
        .create_session(&session_body(31, 1.0))
        .expect("create session");

    // Stream frames 0..4: each arrives as one chunked FrameRecord, in
    // order, bit-identical to direct synthesis.
    let mut stream = client.stream_frames(&session, 0, 4).expect("open stream");
    for expected_index in 0..4u64 {
        let frame = stream
            .next_frame()
            .expect("stream read")
            .expect("stream ended early");
        assert_eq!(frame.frame, expected_index);
        assert!(!frame.skipped, "private session streams never skip");
        assert_eq!(
            frame.bytes,
            direct_frame_bytes(31, 1.0, expected_index),
            "streamed frame {expected_index} diverged from direct synthesize_dnc"
        );
    }
    // The terminal chunk ends the stream...
    assert!(stream.next_frame().expect("terminal chunk").is_none());
    drop(stream);

    // ...and leaves the keep-alive connection usable for ordinary requests.
    let replay = client.fetch_frame(&session, 2).expect("post-stream fetch");
    assert!(replay.cache_hit, "streamed frame must be cached");
    assert_eq!(replay.bytes, direct_frame_bytes(31, 1.0, 2));

    let stats = client.stats().expect("stats");
    let http = stats.get("http").expect("http stats");
    assert!(http.get("streams").and_then(Json::as_f64).unwrap() >= 1.0);
    assert!(http.get("streamed_frames").and_then(Json::as_f64).unwrap() >= 4.0);
    handle.shutdown();
}

#[test]
fn abandoned_stream_desyncs_the_client_and_a_reconnect_resumes() {
    let handle = serve("127.0.0.1:0", ServiceOptions::default()).expect("bind loopback");
    let addr = handle.addr();
    let mut client = ServiceClient::connect(addr).expect("connect");
    let session = client
        .create_session(&session_body(47, 1.0))
        .expect("create session");

    // Read two of four frames, then abandon the stream mid-flight.
    let mut last_seen = 0;
    {
        let mut stream = client.stream_frames(&session, 0, 4).expect("open stream");
        for _ in 0..2 {
            let frame = stream
                .next_frame()
                .expect("stream read")
                .expect("stream ended early");
            last_seen = frame.frame;
        }
    }
    assert_eq!(last_seen, 1);

    // The undrained chunks make the connection unusable: the client must
    // refuse further requests instead of misreading stream data as a head.
    assert!(
        matches!(client.fetch_frame(&session, 0), Err(ClientError::Io(_))),
        "desynced client accepted a request"
    );
    drop(client);

    // A fresh connection resumes the stream at the right frame index.
    let mut client = ServiceClient::connect(addr).expect("reconnect");
    let mut stream = client
        .stream_frames(&session, last_seen + 1, 2)
        .expect("resume stream");
    for expected_index in 2..4u64 {
        let frame = stream
            .next_frame()
            .expect("stream read")
            .expect("stream ended early");
        assert_eq!(frame.frame, expected_index, "resume started at wrong frame");
        assert_eq!(frame.bytes, direct_frame_bytes(47, 1.0, expected_index));
    }
    assert!(stream.next_frame().expect("terminal chunk").is_none());
    drop(stream);
    handle.shutdown();
}

#[test]
fn shared_subscribers_see_identical_frames_and_synthesis_stays_o_fields() {
    let handle = serve("127.0.0.1:0", ServiceOptions::default()).expect("bind loopback");
    let lookahead = handle.service().options().channel_lookahead;
    let mut client = ServiceClient::connect(handle.addr()).expect("connect");

    // Eight subscribers of one shared field: synthesis must scale with the
    // field count (one), not the subscriber count.
    let subscribers = 8u64;
    let frames = 4u64;
    let sessions: Vec<String> = (0..subscribers)
        .map(|_| {
            client
                .create_session(&shared_session_body(61, 1.0))
                .expect("create shared session")
        })
        .collect();
    for session in &sessions {
        for index in 0..frames {
            let fetched = client.fetch_frame(session, index).expect("fetch frame");
            assert_eq!(fetched.frame, index);
            // Byte-exact across every subscriber AND identical to what a
            // private per-session pipeline would have synthesized.
            assert_eq!(
                fetched.bytes,
                direct_frame_bytes(61, 1.0, index),
                "shared frame {index} diverged from the per-session path"
            );
        }
    }

    let stats = client.stats().expect("stats");
    let channels = stats.get("channels").expect("channel stats");
    let stat = |key: &str| channels.get(key).and_then(Json::as_f64).unwrap();
    assert_eq!(stat("live"), 1.0, "one field spec must make one channel");
    assert_eq!(stat("subscribers"), subscribers as f64);
    let synthesized = stat("synthesized");
    let delivered = stat("delivered");
    // O(fields): at most the requested frames plus look-ahead overshoot,
    // regardless of how many subscribers asked.
    assert!(
        synthesized <= (frames + 2 * lookahead) as f64,
        "synthesized {synthesized} frames for {subscribers} subscribers — \
         synthesis is scaling with sessions, not fields"
    );
    assert_eq!(delivered, (subscribers * frames) as f64);
    assert!(delivered / synthesized >= 4.0, "fan-out ratio collapsed");
    // The worker-side render counter agrees: every synthesized frame was
    // rendered exactly once.
    let rendered = stats
        .get("frames")
        .and_then(|f| f.get("rendered"))
        .and_then(Json::as_f64)
        .unwrap();
    assert_eq!(rendered, synthesized);
    handle.shutdown();
}

#[test]
fn shared_delivery_hands_out_the_same_arc_and_steering_forks_private() {
    use spotnoise::json::Json;
    use spotnoise_service::{FieldSpec, SessionSpec};

    let handle = serve("127.0.0.1:0", ServiceOptions::default()).expect("bind loopback");
    let service = handle.service();
    let spec = |seed| {
        SessionSpec::from_body(shared_session_body(seed, 1.0).as_bytes()).expect("parse spec")
    };
    let a = service.create_session(spec(73)).expect("create a");
    let b = service.create_session(spec(73)).expect("create b");

    // Delivery is fan-out of the *same* allocation: no deep copies.
    let first = service.fetch_frame(a, 0).expect("frame via a");
    let second = service.fetch_frame(b, 0).expect("frame via b");
    assert!(!first.cached, "first subscriber must synthesize");
    assert!(second.cached, "second subscriber must ride the broadcast");
    assert!(
        std::sync::Arc::ptr_eq(&first.bytes, &second.bytes),
        "shared delivery deep-copied the frame body"
    );

    // Steering a shared session forks it into a private one: the channel
    // loses the subscriber and the steered session diverges.
    let field = FieldSpec::from_json(
        &Json::parse(r#"{"kind": "vortex", "omega": 3.0, "cx": 0.5, "cy": 0.5}"#).unwrap(),
    )
    .expect("parse field");
    service.steer(b, field).expect("steer b");
    let forked = service.fetch_frame(b, 0).expect("frame after fork");
    assert_ne!(
        *forked.bytes, *first.bytes,
        "steered session still serving the shared field"
    );
    let totals = service.stats_json();
    let subscribers = totals
        .get("channels")
        .and_then(|c| c.get("subscribers"))
        .and_then(Json::as_f64)
        .unwrap();
    assert_eq!(
        subscribers, 1.0,
        "fork did not unsubscribe from the channel"
    );
    // The unforked subscriber still sees the original field.
    let still = service.fetch_frame(a, 0).expect("frame via a again");
    assert_eq!(*still.bytes, *first.bytes);
    handle.shutdown();
}

#[test]
fn metrics_endpoint_exposes_prometheus_histograms_and_counters() {
    let handle = serve("127.0.0.1:0", ServiceOptions::default()).expect("bind loopback");
    let mut client = ServiceClient::connect(handle.addr()).expect("connect");
    let session = client
        .create_session(&session_body(203, 1.0))
        .expect("create session");
    let fetches = 5u64;
    for frame in 0..fetches {
        client.fetch_frame(&session, frame).expect("fetch frame");
    }

    // The raw reply carries the Prometheus text exposition content type.
    let reply = client
        .request("GET", "/metrics", b"")
        .expect("GET /metrics");
    assert_eq!(reply.status, 200);
    assert_eq!(
        reply.header("content-type"),
        Some("text/plain; version=0.0.4")
    );
    let body = client.metrics().expect("metrics text");

    // Golden structure of one histogram family: TYPE line, cumulative
    // buckets ending at +Inf, _sum and _count, and the percentile gauges.
    assert!(body.contains("# TYPE spotnoise_request_duration_us histogram"));
    assert!(body.contains("spotnoise_request_duration_us_bucket{le=\"+Inf\"}"));
    for suffix in ["_sum", "_count", "_p50", "_p90", "_p99"] {
        assert!(
            body.contains(&format!("spotnoise_request_duration_us{suffix} ")),
            "missing spotnoise_request_duration_us{suffix}"
        );
    }
    // Every stage histogram and the headline counters are present.
    for name in [
        "spotnoise_queue_wait_us",
        "spotnoise_stage_advect_us",
        "spotnoise_stage_synthesize_us",
        "spotnoise_stage_render_us",
        "spotnoise_http_requests_total",
        "spotnoise_frames_rendered_total",
        "spotnoise_sessions_live",
        "spotnoise_cache_entries",
        "spotnoise_queue_accepted_total",
        "spotnoise_uptime_seconds",
    ] {
        assert!(body.contains(name), "missing metric {name}");
    }

    // The request histogram's bucket counts are cumulative (monotonically
    // nondecreasing in le) and end exactly at the family count.
    let mut last_cumulative = 0u64;
    let mut bucket_lines = 0;
    let mut count = None;
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("spotnoise_request_duration_us_bucket{le=\"") {
            let value: u64 = rest
                .split_whitespace()
                .next_back()
                .and_then(|v| v.parse().ok())
                .expect("bucket line parses");
            assert!(
                value >= last_cumulative,
                "bucket counts not cumulative: {line}"
            );
            last_cumulative = value;
            bucket_lines += 1;
        } else if let Some(rest) = line.strip_prefix("spotnoise_request_duration_us_count ") {
            count = rest.trim().parse::<u64>().ok();
        }
    }
    assert!(bucket_lines >= 2, "request histogram has no buckets");
    let count = count.expect("request histogram count line");
    assert!(
        count >= fetches,
        "request count {count} below the {fetches} frames fetched"
    );
    assert_eq!(last_cumulative, count, "+Inf bucket must equal _count");
    handle.shutdown();
}

#[test]
fn trace_endpoint_returns_chrome_trace_json_with_nested_spans() {
    use spotnoise::telemetry::{self, TraceMode};

    // Pin tracing on for the server this test boots (the env-independent
    // override; restored below so other tests keep their default-off sinks).
    telemetry::force_mode(Some(TraceMode::Ring));
    let handle = serve("127.0.0.1:0", ServiceOptions::default()).expect("bind loopback");
    telemetry::force_mode(None);
    let mut client = ServiceClient::connect(handle.addr()).expect("connect");
    let session = client
        .create_session(&session_body(211, 1.0))
        .expect("create session");
    for frame in 0..3u64 {
        client.fetch_frame(&session, frame).expect("fetch frame");
    }

    let doc = client.trace(512).expect("GET /trace");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(Json::as_str),
        Some("ms")
    );
    assert_eq!(doc.get("enabled").and_then(Json::as_bool), Some(true));
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty(), "ring sink recorded nothing");

    #[derive(Clone, Copy)]
    struct Span {
        ts: f64,
        dur: f64,
        tid: f64,
        frame: f64,
    }
    let mut by_name: std::collections::HashMap<String, Vec<Span>> =
        std::collections::HashMap::new();
    for event in events {
        // Every event is a complete ("X") span with the fixed pid lane.
        assert_eq!(event.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(event.get("cat").and_then(Json::as_str), Some("spotnoise"));
        assert_eq!(event.get("pid").and_then(Json::as_f64), Some(1.0));
        let get = |key: &str| event.get(key).and_then(Json::as_f64).expect(key);
        let span = Span {
            ts: get("ts"),
            dur: get("dur"),
            tid: get("tid"),
            frame: event
                .get("args")
                .and_then(|a| a.get("frame"))
                .and_then(Json::as_f64)
                .expect("args.frame"),
        };
        assert!(span.ts >= 0.0 && span.dur >= 0.0);
        let name = event
            .get("name")
            .and_then(Json::as_str)
            .expect("span name")
            .to_string();
        by_name.entry(name).or_default().push(span);
    }
    // The lifecycle is covered end to end: admission wait, the synthesis
    // stages, the per-group rasterization, the gather, and the delivery.
    for stage in [
        "request",
        "queue_wait",
        "advect",
        "synthesize",
        "raster_group",
        "gather",
        "render",
        "cache_insert",
        "deliver",
    ] {
        assert!(
            by_name.contains_key(stage),
            "no {stage} span in the trace (have: {:?})",
            by_name.keys().collect::<Vec<_>>()
        );
    }
    // Spans nest: each frame's advect span falls inside the request span
    // that triggered it (same actor lane, same frame, one shared epoch; the
    // +2us headroom absorbs the microsecond truncation of ts and dur).
    let mut nested = 0;
    for advect in &by_name["advect"] {
        if by_name["request"].iter().any(|request| {
            request.tid == advect.tid
                && request.frame == advect.frame
                && request.ts <= advect.ts
                && advect.ts + advect.dur <= request.ts + request.dur + 2.0
        }) {
            nested += 1;
        }
    }
    assert!(
        nested >= 3,
        "advect spans do not nest inside their request spans ({nested} of {})",
        by_name["advect"].len()
    );

    // ?last=N bounds the reply, and a malformed query is a clean 400.
    let bounded = client.trace(3).expect("bounded trace");
    assert!(
        bounded
            .get("traceEvents")
            .and_then(Json::as_array)
            .unwrap()
            .len()
            <= 3
    );
    let bad = client
        .request("GET", "/trace?last=abc", b"")
        .expect("bad query");
    assert_eq!(bad.status, 400);
    handle.shutdown();
}

#[test]
fn stats_stay_internally_consistent_mid_load() {
    let handle = serve("127.0.0.1:0", ServiceOptions::default()).expect("bind loopback");
    let addr = handle.addr();
    let subscribers = 4u64;
    let frames = 6u64;

    // Load: four subscribers of one shared field walk the same frames
    // concurrently while the main thread polls /stats the whole time.
    let done = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let workers: Vec<_> = (0..subscribers)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = ServiceClient::connect(addr).expect("connect subscriber");
                let session = client
                    .create_session(&shared_session_body(227, 1.0))
                    .expect("create shared session");
                for frame in 0..frames {
                    client.fetch_frame(&session, frame).expect("fetch frame");
                }
            })
        })
        .collect();

    let mut poller = ServiceClient::connect(addr).expect("connect poller");
    let stat = |doc: &Json, path: [&str; 2]| {
        doc.get(path[0])
            .and_then(|s| s.get(path[1]))
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("missing stat {}.{}", path[0], path[1]))
    };
    let mut last_delivered = 0.0f64;
    let mut last_completed = 0.0f64;
    let watcher_done = std::sync::Arc::clone(&done);
    while !watcher_done.load(std::sync::atomic::Ordering::Relaxed) {
        let doc = poller.stats().expect("mid-load stats");
        // Each subsystem is snapshotted once, so even mid-load the numbers
        // must be internally coherent — no torn multi-counter reads.
        let accepted = stat(&doc, ["queue", "accepted"]);
        let completed = stat(&doc, ["queue", "completed"]);
        let depth = stat(&doc, ["queue", "depth"]);
        let peak = stat(&doc, ["queue", "peak_depth"]);
        assert!(
            completed <= accepted,
            "queue completed {completed} ahead of accepted {accepted}"
        );
        assert!(depth <= peak, "queue depth {depth} above its peak {peak}");
        let delivered = stat(&doc, ["channels", "delivered"]);
        assert!(
            delivered >= last_delivered && completed >= last_completed,
            "monotonic counters went backwards"
        );
        last_delivered = delivered;
        last_completed = completed;
        let live = stat(&doc, ["sessions", "live"]);
        let created = stat(&doc, ["sessions", "created"]);
        assert!(live <= created);
        if workers.iter().all(|w| w.is_finished()) {
            done.store(true, std::sync::atomic::Ordering::Relaxed);
        }
    }
    for w in workers {
        w.join().expect("subscriber panicked");
    }

    // Settled totals: every subscriber received every frame exactly once,
    // and the queue drained completely.
    let doc = poller.stats().expect("final stats");
    assert_eq!(
        stat(&doc, ["channels", "delivered"]),
        (subscribers * frames) as f64,
        "delivered != subscribers x frames"
    );
    assert_eq!(stat(&doc, ["queue", "depth"]), 0.0);
    assert_eq!(
        stat(&doc, ["queue", "accepted"]),
        stat(&doc, ["queue", "completed"]),
        "queue settled with unfinished jobs"
    );
    // The request-latency histogram saw every frame request, with ordered
    // percentiles.
    let latency = doc
        .get("latency")
        .and_then(|l| l.get("request"))
        .expect("latency.request");
    let lat = |key: &str| latency.get(key).and_then(Json::as_f64).unwrap();
    assert!(lat("count") >= (subscribers * frames) as f64);
    assert!(lat("p50_us") <= lat("p90_us") && lat("p90_us") <= lat("p99_us"));
    assert!(lat("max_us") >= lat("p99_us"));
    // Per-session rows cover every live session.
    let per_session = doc
        .get("per_session")
        .and_then(Json::as_array)
        .expect("per_session array");
    assert_eq!(per_session.len() as f64, stat(&doc, ["sessions", "live"]));
    handle.shutdown();
}

#[test]
fn a_stalled_server_surfaces_as_timed_out_not_a_broken_connection() {
    // A listener that accepts and then never answers: the client's read
    // deadline must fire as the distinct TimedOut error.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
    let holder = std::thread::spawn(move || {
        let accepted = listener.accept().map(|(stream, _)| stream);
        // Hold the socket open (no reply) until the test is done asserting.
        let _ = release_rx.recv();
        drop(accepted);
    });

    let mut client =
        ServiceClient::connect_with_read_timeout(addr, Some(Duration::from_millis(50)))
            .expect("connect");
    let started = std::time::Instant::now();
    assert!(
        matches!(client.fetch_frame("nobody", 0), Err(ClientError::TimedOut)),
        "read deadline did not surface as TimedOut"
    );
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "deadline took implausibly long to fire"
    );
    release_tx.send(()).expect("release holder");
    holder.join().expect("holder thread");
}

#[test]
fn advance_endpoint_and_shutdown_are_clean() {
    let handle = serve("127.0.0.1:0", ServiceOptions::default()).expect("bind loopback");
    let mut client = ServiceClient::connect(handle.addr()).expect("connect");
    let session = client
        .create_session(&session_body(99, 1.0))
        .expect("create session");
    let first = client.advance(&session).expect("advance 0");
    let second = client.advance(&session).expect("advance 1");
    assert_eq!(first.frame, 0);
    assert_eq!(second.frame, 1);
    assert_ne!(first.bytes, second.bytes);
    // A frame fetch of an advanced index hits the cache.
    let replay = client.fetch_frame(&session, 1).expect("replay");
    assert!(replay.cache_hit);
    assert_eq!(replay.bytes, second.bytes);

    client.shutdown().expect("shutdown request");
    handle.join();
}
