//! Workspace-level guarantees of the vectorized fragment pipeline:
//!
//! * **Exact mode is pinned to the seed output.** The lane-blocked span
//!   fills, the fused gather and the frame arena are pure restructurings —
//!   the stable content hash of a `SamplingMode::Exact` synthesis must equal
//!   the value recorded from the pre-optimization implementation, bit for
//!   bit. If this test fails, a "performance" change silently altered the
//!   rendered texels.
//! * **Arena reuse is invisible.** Frames produced by a pooled-buffer
//!   pipeline are bit-identical to fresh-allocation synthesis, frame after
//!   frame, and the pool really is reused (no steady-state texture
//!   allocations).
//! * **Footprint sampling is gated.** The speed-for-quality trade stays
//!   within the `quality` tolerances on full syntheses.

use flowfield::analytic::{Uniform, Vortex};
use flowfield::{Rect, Vec2};
use softpipe::machine::MachineConfig;
use spotnoise::config::{SamplingMode, SpotKind, SynthesisConfig};
use spotnoise::dnc::synthesize_dnc;
use spotnoise::hash::StableHasher;
use spotnoise::pipeline::{ExecutionMode, Pipeline};
use spotnoise::quality::sampling_quality;
use spotnoise::spot::generate_spots;
use spotnoise::synth::synthesize_sequential;
use std::sync::Arc;

fn domain() -> Rect {
    Rect::new(Vec2::ZERO, Vec2::new(1.0, 1.0))
}

fn vortex() -> Vortex {
    Vortex {
        omega: 1.0,
        center: Vec2::new(0.5, 0.5),
        domain: domain(),
    }
}

fn texture_hash(texture: &softpipe::Texture) -> u64 {
    let mut h = StableHasher::new();
    for v in texture.data() {
        h.write_f32(*v);
    }
    h.finish()
}

/// Exact-mode output is unchanged from the seed implementation: these hashes
/// were recorded from the repository state *before* the lane-blocked fills,
/// fused gather and frame arena landed. Any drift means an optimization
/// changed the rendered texels.
///
/// Runs under **every SIMD dispatch level the host supports** (scalar plus
/// SSE2/AVX2 or NEON): the explicit kernels are required to be bit-identical
/// to the scalar path, so one hash pins them all.
#[test]
fn exact_mode_is_bit_identical_to_seed_output() {
    let field = vortex();
    let disc = SynthesisConfig::small_test();
    let disc_spots = generate_spots(
        disc.spot_count,
        domain(),
        disc.intensity_amplitude,
        disc.seed,
    );
    let bent = SynthesisConfig {
        spot_kind: SpotKind::Bent { rows: 8, cols: 3 },
        spot_count: 150,
        ..SynthesisConfig::small_test()
    };
    let bent_spots = generate_spots(
        bent.spot_count,
        domain(),
        bent.intensity_amplitude,
        bent.seed,
    );
    for level in softpipe::simd::available() {
        softpipe::simd::force(Some(level));
        let out = synthesize_sequential(&field, &disc_spots, &disc);
        assert_eq!(
            texture_hash(&out.texture),
            0x6f66138deb36b5ed,
            "disc Exact synthesis drifted from the seed output at SIMD level {}",
            level.name()
        );
        let out = synthesize_sequential(&field, &bent_spots, &bent);
        assert_eq!(
            texture_hash(&out.texture),
            0x1d922e165ddf7bd8,
            "bent-mesh Exact synthesis drifted from the seed output at SIMD level {}",
            level.name()
        );
    }
    softpipe::simd::force(None);
}

/// Two consecutive frames from one pooled pipeline are bit-identical to the
/// same frames from a fresh-allocation pipeline — buffer reuse must be
/// completely invisible in the output.
#[test]
fn arena_reuse_is_bit_identical_to_fresh_allocation() {
    let cfg = SynthesisConfig::small_test();
    let machine = MachineConfig::new(2, 2);
    let field = vortex();
    let mut pooled = Pipeline::new(cfg, ExecutionMode::DivideAndConquer(machine), domain());
    assert!(pooled.frame_arena().is_some(), "pooling is the default");
    let mut fresh = Pipeline::new(cfg, ExecutionMode::DivideAndConquer(machine), domain());
    fresh.set_frame_arena(None);
    for frame in 0..3 {
        let a = pooled.advance(&field, 0.05, 0);
        let b = fresh.advance(&field, 0.05, 0);
        assert_eq!(
            a.texture.absolute_difference(&b.texture),
            0.0,
            "frame {frame}: pooled pipeline diverged from fresh allocation"
        );
    }
    // The pool really was exercised: after the first frame every subsequent
    // partial/gather checkout is a reuse, not an allocation.
    let stats = pooled.frame_arena().unwrap().stats();
    assert!(
        stats.texture_reuses > 0,
        "arena never reused a texture: {stats:?}"
    );
    assert!(
        stats.command_reuses > 0,
        "arena never reused a command vector: {stats:?}"
    );
}

/// Steady state allocates no frame textures: once the pool is warm (and the
/// caller recycles consumed frames), texture checkouts are all reuses.
#[test]
fn steady_state_frames_stop_allocating_textures() {
    let cfg = SynthesisConfig {
        spot_count: 60,
        ..SynthesisConfig::small_test()
    };
    let machine = MachineConfig::new(1, 1);
    let field = vortex();
    let mut pipeline = Pipeline::new(cfg, ExecutionMode::DivideAndConquer(machine), domain());
    pipeline.set_display_enabled(false);
    // Warm-up frame: the pool starts empty, so this one allocates.
    let arena = Arc::clone(pipeline.frame_arena().unwrap());
    let out = pipeline.advance(&field, 0.05, 0);
    arena.recycle_texture(out.texture);
    let warm = arena.stats();
    for _ in 0..4 {
        let out = pipeline.advance(&field, 0.05, 0);
        arena.recycle_texture(out.texture);
    }
    let steady = arena.stats();
    assert_eq!(
        steady.texture_allocations, warm.texture_allocations,
        "steady-state frames still allocated textures: {steady:?} after warm-up {warm:?}"
    );
    assert!(steady.texture_reuses > warm.texture_reuses);
}

/// The tiled compose path honours the zeroed-target contract when its gather
/// target comes from the (dirty-capable) arena pool.
#[test]
fn tiled_frames_with_arena_match_fresh_allocation() {
    let cfg = SynthesisConfig {
        use_tiling: true,
        ..SynthesisConfig::small_test()
    };
    let machine = MachineConfig::new(4, 4);
    let field = vortex();
    let mut pooled = Pipeline::new(cfg, ExecutionMode::DivideAndConquer(machine), domain());
    let mut fresh = Pipeline::new(cfg, ExecutionMode::DivideAndConquer(machine), domain());
    fresh.set_frame_arena(None);
    for frame in 0..3 {
        let a = pooled.advance(&field, 0.05, 0);
        let b = fresh.advance(&field, 0.05, 0);
        assert_eq!(
            a.texture.absolute_difference(&b.texture),
            0.0,
            "tiled frame {frame} diverged under arena reuse"
        );
    }
}

/// Full-synthesis footprint quality gate over the divide-and-conquer path
/// (the unit proptests cover the sequential path): contrast and per-texel
/// error stay within the documented tolerances.
#[test]
fn dnc_footprint_synthesis_stays_within_quality_tolerance() {
    let field = Uniform {
        velocity: Vec2::new(1.0, 0.3),
        domain: domain(),
    };
    let exact_cfg = SynthesisConfig {
        spot_kind: SpotKind::Bent { rows: 12, cols: 3 },
        spot_count: 200,
        max_stretch: 4.0,
        ..SynthesisConfig::small_test()
    };
    let footprint_cfg = SynthesisConfig {
        sampling: SamplingMode::Footprint,
        ..exact_cfg
    };
    let spots = generate_spots(exact_cfg.spot_count, domain(), 1.0, 9);
    let machine = MachineConfig::new(4, 2);
    let exact = synthesize_dnc(&field, &spots, &exact_cfg, &machine);
    let approx = synthesize_dnc(&field, &spots, &footprint_cfg, &machine);
    let q = sampling_quality(&exact.texture, &approx.texture);
    assert!(q.within_footprint_tolerance(), "{q:?}");
    // And the knob actually changed the sampling (the gate is not trivially
    // passing on identical textures).
    assert!(exact.texture.absolute_difference(&approx.texture) > 0.0);
}
