//! Spots and their data-driven transformation.
//!
//! A spot-noise texture is `f(x) = Σ aᵢ h(x − xᵢ)`: spots of random intensity
//! `aᵢ` drawn at random positions `xᵢ`. Flow visualization enters through the
//! spot *shape*: each spot is rotated to the local flow direction and
//! stretched in proportion to the local speed, so the resulting texture is
//! correlated along stream lines. This module holds the spot instances, the
//! coordinate mapping between field space and texture pixels, and the
//! standard (non-bent) spot geometry construction that runs on the CPUs.

use crate::config::SynthesisConfig;
use flowfield::stats::SpeedNormalizer;
use flowfield::{Mat2, Rect, Vec2, VectorField};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use softpipe::cost::CpuWork;
use softpipe::{TexturedMesh, Vertex};

/// One spot instance: a position in field coordinates and its random,
/// zero-mean intensity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Spot {
    /// Spot position `xᵢ` in field coordinates.
    pub position: Vec2,
    /// Spot intensity `aᵢ`.
    pub intensity: f32,
}

/// Generates `count` spots uniformly distributed over `domain` with zero-mean
/// random intensities in `[-amplitude, amplitude]`, deterministically from
/// `seed`.
pub fn generate_spots(count: usize, domain: Rect, amplitude: f64, seed: u64) -> Vec<Spot> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..count)
        .map(|_| Spot {
            position: Vec2::new(
                rng.gen_range(domain.min.x..=domain.max.x),
                rng.gen_range(domain.min.y..=domain.max.y),
            ),
            intensity: rng.gen_range(-amplitude..=amplitude) as f32,
        })
        .collect()
}

/// Maps between field coordinates and texture pixel coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FieldToPixel {
    domain: Rect,
    texture_size: usize,
}

impl FieldToPixel {
    /// Creates a mapper for a field domain rendered onto a square texture.
    pub fn new(domain: Rect, texture_size: usize) -> Self {
        assert!(texture_size > 0);
        FieldToPixel {
            domain,
            texture_size,
        }
    }

    /// The field domain.
    pub fn domain(&self) -> Rect {
        self.domain
    }

    /// The texture resolution (texels per side).
    pub fn texture_size(&self) -> usize {
        self.texture_size
    }

    /// Maps a field-space point to pixel coordinates.
    pub fn to_pixel(&self, p: Vec2) -> Vec2 {
        let uv = self.domain.to_unit(p);
        uv * self.texture_size as f64
    }

    /// Maps pixel coordinates back to field space.
    pub fn to_field(&self, px: Vec2) -> Vec2 {
        self.domain.from_unit(px / self.texture_size as f64)
    }

    /// Converts a length along x in field units into pixels.
    pub fn length_to_pixels(&self, len: f64) -> f64 {
        len / self.domain.width() * self.texture_size as f64
    }

    /// Converts a pixel length into field units (along x).
    pub fn pixels_to_length(&self, px: f64) -> f64 {
        px / self.texture_size as f64 * self.domain.width()
    }
}

/// The shape parameters of a transformed standard spot: an ellipse aligned
/// with the local flow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpotTransform {
    /// Rotation angle of the major axis (radians).
    pub angle: f64,
    /// Half-axis along the flow direction, in pixels.
    pub along: f64,
    /// Half-axis across the flow direction, in pixels.
    pub across: f64,
}

/// Computes the data-driven spot transform at a position: the spot is rotated
/// into the flow direction and elongated by a factor that grows linearly with
/// the normalised speed up to `max_stretch`, while (approximately) preserving
/// the spot area so the overall texture energy stays comparable across the
/// field.
pub fn spot_transform(
    field: &dyn VectorField,
    position: Vec2,
    radius_pixels: f64,
    max_stretch: f64,
    normalizer: &SpeedNormalizer,
) -> SpotTransform {
    let v = field.velocity(position);
    let speed = v.norm();
    let s = normalizer.normalize(speed);
    let stretch = 1.0 + (max_stretch - 1.0) * s;
    let angle = if speed > 1e-12 { v.angle() } else { 0.0 };
    SpotTransform {
        angle,
        along: radius_pixels * stretch,
        across: radius_pixels / stretch.sqrt(),
    }
}

/// Builds the four-vertex textured quad of a standard spot, transformed by
/// the local flow, in pixel coordinates.
pub fn standard_spot_quad(transform: &SpotTransform, center_pixels: Vec2) -> [Vertex; 4] {
    let rot = Mat2::rotation(transform.angle);
    let corners = [
        (Vec2::new(-transform.along, -transform.across), (0.0, 0.0)),
        (Vec2::new(transform.along, -transform.across), (1.0, 0.0)),
        (Vec2::new(transform.along, transform.across), (1.0, 1.0)),
        (Vec2::new(-transform.along, transform.across), (0.0, 1.0)),
    ];
    corners.map(|(offset, (u, v))| Vertex::new(center_pixels + rot.apply(offset), u, v))
}

/// The CPU-side product of processing one spot: either a quad or a bent-spot
/// mesh, plus the spot intensity and the work counters the cost model needs.
#[derive(Debug, Clone)]
pub enum SpotGeometry {
    /// A standard four-vertex spot.
    Quad([Vertex; 4]),
    /// A bent spot (textured mesh around a stream line).
    Mesh(TexturedMesh),
}

impl SpotGeometry {
    /// Number of vertices this geometry submits to a pipe.
    pub fn vertex_count(&self) -> usize {
        match self {
            SpotGeometry::Quad(_) => 4,
            SpotGeometry::Mesh(m) => m.vertex_count(),
        }
    }

    /// Axis-aligned bounding box of the geometry in pixel coordinates.
    pub fn bounds(&self) -> Rect {
        let mut min = Vec2::splat(f64::INFINITY);
        let mut max = Vec2::splat(f64::NEG_INFINITY);
        let mut extend = |p: Vec2| {
            min = min.min(p);
            max = max.max(p);
        };
        match self {
            SpotGeometry::Quad(q) => {
                for v in q {
                    extend(v.position);
                }
            }
            SpotGeometry::Mesh(m) => {
                for v in m.vertices() {
                    extend(v.position);
                }
            }
        }
        Rect::new(min, max)
    }
}

/// A fully processed spot ready for submission to a graphics pipe.
#[derive(Debug, Clone)]
pub struct SpotJob {
    /// The geometry in pixel coordinates (or in spot-local coordinates when
    /// `pipe_transform` is set).
    pub geometry: SpotGeometry,
    /// The spot intensity `aᵢ`.
    pub intensity: f32,
    /// CPU work expended to build this geometry (for the cost model).
    pub cpu_work: CpuWork,
    /// When set, the geometry is expressed in spot-local coordinates and this
    /// transformation must be loaded into the pipe before rendering — the
    /// "spot transformation on the graphics pipe" variant whose per-spot
    /// synchronisation cost the paper's implementation avoids.
    pub pipe_transform: Option<softpipe::Transform2>,
}

/// Builds the [`SpotJob`] of a *standard* (non-bent) spot. Bent spots are
/// built by [`crate::bent::build_bent_spot`].
///
/// With `cfg.transform_on_pipe` enabled the quad is emitted in spot-local
/// coordinates (axis-aligned, centred at the origin) and the
/// rotation+translation is attached as a pipe transform instead.
pub fn build_standard_spot(
    field: &dyn VectorField,
    spot: &Spot,
    cfg: &SynthesisConfig,
    mapper: &FieldToPixel,
    normalizer: &SpeedNormalizer,
) -> SpotJob {
    let transform = spot_transform(
        field,
        spot.position,
        cfg.spot_radius_pixels(),
        cfg.max_stretch,
        normalizer,
    );
    let center = mapper.to_pixel(spot.position);
    let (quad, pipe_transform) = if cfg.transform_on_pipe {
        let local = standard_spot_quad(
            &SpotTransform {
                angle: 0.0,
                ..transform
            },
            Vec2::ZERO,
        );
        let t = softpipe::Transform2::new(Mat2::rotation(transform.angle), center);
        (local, Some(t))
    } else {
        (standard_spot_quad(&transform, center), None)
    };
    SpotJob {
        geometry: SpotGeometry::Quad(quad),
        intensity: spot.intensity,
        cpu_work: CpuWork {
            streamline_steps: 0,
            mesh_vertices: 4,
            spots: 1,
        },
        pipe_transform,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowfield::analytic::Uniform;
    use flowfield::stats::{field_stats, SpeedNormalizer};

    fn domain() -> Rect {
        Rect::new(Vec2::ZERO, Vec2::new(1.0, 1.0))
    }

    #[test]
    fn generated_spots_are_in_domain_and_deterministic() {
        let spots = generate_spots(500, domain(), 1.0, 7);
        assert_eq!(spots.len(), 500);
        assert!(spots.iter().all(|s| domain().contains(s.position)));
        assert!(spots.iter().all(|s| s.intensity.abs() <= 1.0));
        let again = generate_spots(500, domain(), 1.0, 7);
        assert_eq!(spots[0].position, again[0].position);
        // Zero-mean-ish intensities.
        let mean: f64 = spots.iter().map(|s| s.intensity as f64).sum::<f64>() / 500.0;
        assert!(mean.abs() < 0.1);
    }

    #[test]
    fn field_to_pixel_roundtrip() {
        let m = FieldToPixel::new(Rect::new(Vec2::new(-2.0, 1.0), Vec2::new(4.0, 5.0)), 256);
        let p = Vec2::new(1.0, 2.5);
        let px = m.to_pixel(p);
        let back = m.to_field(px);
        assert!((back - p).norm() < 1e-9);
        // Corners map to texture corners.
        assert!((m.to_pixel(Vec2::new(-2.0, 1.0)) - Vec2::ZERO).norm() < 1e-9);
        assert!((m.to_pixel(Vec2::new(4.0, 5.0)) - Vec2::splat(256.0)).norm() < 1e-9);
    }

    #[test]
    fn length_conversion_roundtrip() {
        let m = FieldToPixel::new(Rect::new(Vec2::ZERO, Vec2::new(10.0, 10.0)), 512);
        assert!((m.length_to_pixels(1.0) - 51.2).abs() < 1e-9);
        assert!((m.pixels_to_length(m.length_to_pixels(3.3)) - 3.3).abs() < 1e-9);
    }

    #[test]
    fn transform_aligns_with_flow_and_stretches_with_speed() {
        let f = Uniform {
            velocity: Vec2::new(0.0, 2.0),
            domain: domain(),
        };
        let norm = SpeedNormalizer::new(0.0, 2.0);
        let t = spot_transform(&f, Vec2::new(0.5, 0.5), 10.0, 4.0, &norm);
        // Flow points along +y, so the angle is pi/2.
        assert!((t.angle - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
        // Full speed: stretch factor 4.
        assert!((t.along - 40.0).abs() < 1e-9);
        assert!(t.across < 10.0);
    }

    #[test]
    fn zero_speed_spot_is_isotropic() {
        let f = Uniform {
            velocity: Vec2::ZERO,
            domain: domain(),
        };
        let stats = field_stats(&f, 4, 4);
        let norm = SpeedNormalizer::from_stats(&stats);
        let t = spot_transform(&f, Vec2::new(0.5, 0.5), 8.0, 4.0, &norm);
        // Degenerate speed range: normaliser returns 0.5 -> moderate stretch,
        // but the angle defaults to zero and the axes stay finite.
        assert_eq!(t.angle, 0.0);
        assert!(t.along.is_finite() && t.across.is_finite());
        assert!(t.along >= t.across);
    }

    #[test]
    fn standard_quad_centres_on_position_and_respects_rotation() {
        let t = SpotTransform {
            angle: 0.0,
            along: 6.0,
            across: 2.0,
        };
        let quad = standard_spot_quad(&t, Vec2::new(100.0, 50.0));
        // Centroid equals the centre.
        let centroid = quad.iter().fold(Vec2::ZERO, |acc, v| acc + v.position) / 4.0;
        assert!((centroid - Vec2::new(100.0, 50.0)).norm() < 1e-9);
        // Width along x is 12, height 4.
        let xs: Vec<f64> = quad.iter().map(|v| v.position.x).collect();
        let ys: Vec<f64> = quad.iter().map(|v| v.position.y).collect();
        let w = xs.iter().cloned().fold(f64::MIN, f64::max)
            - xs.iter().cloned().fold(f64::MAX, f64::min);
        let h = ys.iter().cloned().fold(f64::MIN, f64::max)
            - ys.iter().cloned().fold(f64::MAX, f64::min);
        assert!((w - 12.0).abs() < 1e-9);
        assert!((h - 4.0).abs() < 1e-9);

        // Rotated by 90 degrees the roles of width and height swap.
        let t90 = SpotTransform {
            angle: std::f64::consts::FRAC_PI_2,
            ..t
        };
        let quad90 = standard_spot_quad(&t90, Vec2::ZERO);
        let xs: Vec<f64> = quad90.iter().map(|v| v.position.x).collect();
        let w90 = xs.iter().cloned().fold(f64::MIN, f64::max)
            - xs.iter().cloned().fold(f64::MAX, f64::min);
        assert!((w90 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn build_standard_spot_reports_cpu_work() {
        let f = Uniform {
            velocity: Vec2::new(1.0, 0.0),
            domain: domain(),
        };
        let cfg = SynthesisConfig::small_test();
        let mapper = FieldToPixel::new(domain(), cfg.texture_size);
        let norm = SpeedNormalizer::new(0.0, 1.0);
        let spot = Spot {
            position: Vec2::new(0.5, 0.5),
            intensity: 0.7,
        };
        let job = build_standard_spot(&f, &spot, &cfg, &mapper, &norm);
        assert_eq!(job.intensity, 0.7);
        assert_eq!(job.cpu_work.spots, 1);
        assert_eq!(job.geometry.vertex_count(), 4);
        // The quad sits near the middle of the texture.
        let b = job.geometry.bounds();
        assert!(b.contains(Vec2::new(64.0, 64.0)));
    }

    #[test]
    fn geometry_bounds_cover_all_vertices() {
        let quad = standard_spot_quad(
            &SpotTransform {
                angle: 0.3,
                along: 5.0,
                across: 2.0,
            },
            Vec2::new(10.0, 10.0),
        );
        let g = SpotGeometry::Quad(quad);
        let b = g.bounds();
        for v in &quad {
            assert!(b.expanded(1e-12).contains(v.position));
        }
    }
}
