//! The atmospheric-pollution (smog prediction) steering application.
//!
//! The paper's first application steers a smog-prediction simulation: the
//! user monitors the evolution of pollutant concentrations (here ozone, O₃)
//! while changing emission, meteorological and geographical parameters, and
//! the wind field is displayed with spot noise instead of arrow plots.
//!
//! The substitute model implemented here is an advection–diffusion–reaction
//! equation for a single pollutant concentration on the paper's 53x55
//! regular grid, driven by the synthetic wind of [`crate::wind`]:
//!
//! ```text
//! ∂c/∂t + u·∇c = D ∇²c + E(x) − λ c
//! ```
//!
//! with emission sources `E` at city locations, diffusion `D`, linear decay
//! `λ`, and semi-Lagrangian advection so the step stays stable for the large
//! time steps an interactive session uses. All steerable parameters live in
//! [`SmogParameters`] and can be changed between frames.

use crate::steering::SmogParameters;
use crate::wind::WindModel;
use flowfield::{Integrator, Rect, RegularGrid, ScalarGrid, Vec2, VectorField};
use serde::{Deserialize, Serialize};

/// An emission source (a city or industrial area).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmissionSource {
    /// Location of the source.
    pub position: Vec2,
    /// Emission strength (concentration units per time unit at the centre).
    pub rate: f64,
    /// Gaussian radius of the emission footprint.
    pub radius: f64,
}

/// The smog-prediction model state.
#[derive(Debug, Clone)]
pub struct SmogModel {
    wind: WindModel,
    params: SmogParameters,
    sources: Vec<EmissionSource>,
    concentration: ScalarGrid,
    wind_grid: RegularGrid,
    nx: usize,
    ny: usize,
    time: f64,
}

impl SmogModel {
    /// Grid resolution used by the paper's data set.
    pub const PAPER_NX: usize = 53;
    /// Grid resolution used by the paper's data set.
    pub const PAPER_NY: usize = 55;

    /// Creates the model on an `nx` x `ny` grid with default parameters and
    /// a handful of emission sources spread over the domain.
    pub fn new(nx: usize, ny: usize, seed: u64) -> Self {
        let wind = WindModel::europe(seed);
        let domain = wind.domain;
        let sources = default_sources(domain);
        let concentration = ScalarGrid::zeros(nx, ny, domain);
        let wind_grid = wind.sample(nx, ny, 0.0);
        SmogModel {
            wind,
            params: SmogParameters::default(),
            sources,
            concentration,
            wind_grid,
            nx,
            ny,
            time: 0.0,
        }
    }

    /// Creates the model at the paper's 53x55 resolution.
    pub fn paper_resolution(seed: u64) -> Self {
        SmogModel::new(Self::PAPER_NX, Self::PAPER_NY, seed)
    }

    /// The simulation domain.
    pub fn domain(&self) -> Rect {
        self.wind.domain
    }

    /// Current simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Current steering parameters.
    pub fn params(&self) -> &SmogParameters {
        &self.params
    }

    /// Applies new steering parameters (takes effect from the next step).
    pub fn set_params(&mut self, params: SmogParameters) {
        self.params = params;
    }

    /// The emission sources.
    pub fn sources(&self) -> &[EmissionSource] {
        &self.sources
    }

    /// Adds an emission source interactively.
    pub fn add_source(&mut self, source: EmissionSource) {
        self.sources.push(source);
    }

    /// The wind field of the current frame (what spot noise visualises).
    pub fn wind_field(&self) -> &RegularGrid {
        &self.wind_grid
    }

    /// The pollutant concentration of the current frame (the colormapped
    /// overlay of Figure 6).
    pub fn concentration(&self) -> &ScalarGrid {
        &self.concentration
    }

    /// Advances the simulation by `dt`: refreshes the wind grid from the
    /// wind model, advects/diffuses the pollutant and applies emissions and
    /// decay.
    pub fn step(&mut self, dt: f64) {
        self.time += dt;
        // Step 1 of the pipeline: a new wind data set arrives each frame.
        self.wind_grid = self.wind.sample(self.nx, self.ny, self.time);
        let wind_scale = self.params.wind_multiplier;

        let domain = self.domain();
        let spacing = Vec2::new(
            domain.width() / (self.nx - 1) as f64,
            domain.height() / (self.ny - 1) as f64,
        );
        let old = self.concentration.clone();

        // Scaled wind field used for the advection of the pollutant.
        let scaled = ScaledField {
            grid: &self.wind_grid,
            scale: wind_scale,
        };

        let mut next = ScalarGrid::zeros(self.nx, self.ny, domain);
        for j in 0..self.ny {
            for i in 0..self.nx {
                let p = old.node_position(i, j);
                // Semi-Lagrangian advection: trace the characteristic back in
                // time and sample the old concentration there.
                let departure = Integrator::RungeKutta4.step(&Reversed(&scaled), p, dt);
                let departure = domain.clamp(departure);
                let advected = old.interpolate(departure);

                // Explicit diffusion (5-point Laplacian of the old field).
                let ip = (i + 1).min(self.nx - 1);
                let im = i.saturating_sub(1);
                let jp = (j + 1).min(self.ny - 1);
                let jm = j.saturating_sub(1);
                let lap = (old.node(ip, j) - 2.0 * old.node(i, j) + old.node(im, j))
                    / (spacing.x * spacing.x)
                    + (old.node(i, jp) - 2.0 * old.node(i, j) + old.node(i, jm))
                        / (spacing.y * spacing.y);

                // Emission and decay.
                let mut emission = 0.0;
                for s in &self.sources {
                    let d2 = (p - s.position).norm_sq();
                    emission += s.rate
                        * self.params.emission_multiplier
                        * (-d2 / (2.0 * s.radius * s.radius)).exp();
                }

                let value = advected + dt * (self.params.diffusion * lap + emission)
                    - dt * self.params.decay * advected;
                *next.node_mut(i, j) = value.max(0.0);
            }
        }
        self.concentration = next;
    }

    /// Total pollutant mass (grid sum), a conserved-ish quantity useful for
    /// regression tests and steering feedback.
    pub fn total_pollutant(&self) -> f64 {
        self.concentration.samples().iter().sum()
    }
}

fn default_sources(domain: Rect) -> Vec<EmissionSource> {
    // A handful of "cities" at fixed fractional positions.
    let positions = [
        (0.25, 0.35),
        (0.45, 0.55),
        (0.62, 0.42),
        (0.7, 0.7),
        (0.35, 0.75),
    ];
    positions
        .iter()
        .map(|&(u, v)| EmissionSource {
            position: domain.from_unit(Vec2::new(u, v)),
            rate: 1.0,
            radius: 0.03 * domain.width(),
        })
        .collect()
}

/// A velocity field scaled by a steering multiplier.
struct ScaledField<'a> {
    grid: &'a RegularGrid,
    scale: f64,
}

impl VectorField for ScaledField<'_> {
    fn velocity(&self, p: Vec2) -> Vec2 {
        self.grid.interpolate(p) * self.scale
    }
    fn domain(&self) -> Rect {
        self.grid.domain()
    }
}

/// A time-reversed field (for backward characteristic tracing).
struct Reversed<'a, F: VectorField>(&'a F);

impl<F: VectorField> VectorField for Reversed<'_, F> {
    fn velocity(&self, p: Vec2) -> Vec2 {
        -self.0.velocity(p)
    }
    fn domain(&self) -> Rect {
        self.0.domain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_model() -> SmogModel {
        SmogModel::new(27, 28, 11)
    }

    #[test]
    fn paper_resolution_matches_dataset() {
        let m = SmogModel::paper_resolution(1);
        assert_eq!(m.wind_field().nx(), 53);
        assert_eq!(m.wind_field().ny(), 55);
        assert_eq!(m.concentration().nx(), 53);
        assert_eq!(m.concentration().ny(), 55);
    }

    #[test]
    fn pollutant_grows_from_emissions() {
        let mut m = small_model();
        assert_eq!(m.total_pollutant(), 0.0);
        for _ in 0..10 {
            m.step(0.1);
        }
        assert!(m.total_pollutant() > 0.0);
        // Concentration is non-negative everywhere.
        assert!(m.concentration().samples().iter().all(|&c| c >= 0.0));
    }

    #[test]
    fn emission_multiplier_steers_pollutant_mass() {
        let mut low = small_model();
        let mut high = small_model();
        let mut p = *high.params();
        p.emission_multiplier = 4.0;
        high.set_params(p);
        for _ in 0..10 {
            low.step(0.1);
            high.step(0.1);
        }
        assert!(high.total_pollutant() > 2.0 * low.total_pollutant());
    }

    #[test]
    fn decay_removes_pollutant() {
        let mut m = small_model();
        for _ in 0..10 {
            m.step(0.1);
        }
        let before = m.total_pollutant();
        // Switch off emissions, crank up decay: mass must fall.
        let mut p = *m.params();
        p.emission_multiplier = 0.0;
        p.decay = 2.0;
        m.set_params(p);
        for _ in 0..10 {
            m.step(0.1);
        }
        assert!(m.total_pollutant() < before);
    }

    #[test]
    fn wind_field_changes_every_frame() {
        let mut m = small_model();
        let w0 = m.wind_field().clone();
        m.step(0.5);
        let w1 = m.wind_field();
        let diff: f64 = w0
            .samples()
            .iter()
            .zip(w1.samples())
            .map(|(a, b)| (*a - *b).norm())
            .sum();
        assert!(diff > 1e-6, "wind grid did not change");
        assert!((m.time() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pollutant_plume_drifts_downwind() {
        // With a single strong source and eastward mean wind, the centre of
        // mass of the plume moves to the east of the source over time.
        let mut m = SmogModel::new(41, 41, 3);
        m.sources.clear();
        let src = EmissionSource {
            position: m.domain().from_unit(Vec2::new(0.3, 0.5)),
            rate: 5.0,
            radius: 0.03 * m.domain().width(),
        };
        m.add_source(src);
        for _ in 0..30 {
            m.step(0.2);
        }
        // Centre of mass of the concentration.
        let c = m.concentration();
        let mut mass = 0.0;
        let mut mx = 0.0;
        for j in 0..c.ny() {
            for i in 0..c.nx() {
                let v = c.node(i, j);
                mass += v;
                mx += v * c.node_position(i, j).x;
            }
        }
        let com_x = mx / mass.max(1e-12);
        assert!(
            com_x > src.position.x,
            "plume centre {com_x} not downwind of source {}",
            src.position.x
        );
    }

    #[test]
    fn adding_sources_increases_emission() {
        let mut m = small_model();
        let n_before = m.sources().len();
        m.add_source(EmissionSource {
            position: m.domain().center(),
            rate: 2.0,
            radius: 0.5,
        });
        assert_eq!(m.sources().len(), n_before + 1);
    }
}
